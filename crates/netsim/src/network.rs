//! The packet-level discrete-event network engine.
//!
//! A [`Network`] moves *transfers* (byte blobs; the MPI protocol layer above
//! decides what they mean) from node to node through three classes of FIFO
//! queue server:
//!
//! 1. the sender's NIC (serialises frames at link rate — shared by all
//!    processes of an SMP node, which is the paper's "contention for the one
//!    network interface in each node");
//! 2. the source switch's egress **trunk** towards the stacking backplane
//!    (2.1 Gbit/s, finite buffer) — only for inter-switch frames; saturating
//!    it reproduces the paper's Figure 4 backplane saturation;
//! 3. the destination node's switch **egress port** (link rate, finite
//!    buffer) — the classic incast drop point.
//!
//! Buffer overflow drops a frame; the transport recovers go-back-N style
//! after a retransmission timeout with exponential backoff, reproducing the
//! paper's "outliers in the distribution at values related to the network's
//! retransmission timeout parameters". Every queue server adds a small
//! exponentially-distributed service jitter, which broadens the
//! communication-time distributions the way OS/interrupt noise does on real
//! commodity clusters.

use crate::config::{ClusterConfig, NodeId};
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::time::{wire_time, Dur, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a transfer, unique within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

/// Notification that a transfer's last byte (plus receive overhead) reached
/// the destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Which transfer completed.
    pub id: TransferId,
    /// Virtual time of delivery.
    pub delivered_at: Time,
    /// How many retransmission rounds the transfer needed (0 = clean).
    pub retransmissions: u32,
}

/// Aggregate counters, used by tests and the EXPERIMENTS write-up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames injected into the network (including retransmitted frames).
    pub frames_sent: u64,
    /// Frames dropped on buffer overflow.
    pub frames_dropped: u64,
    /// Retransmission rounds triggered.
    pub retransmissions: u64,
    /// Transfers completed.
    pub transfers_completed: u64,
    /// Payload bytes delivered (goodput).
    pub bytes_delivered: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Wire bytes carried by the stacking backplane (inter-switch bus).
    pub trunk_bytes: u64,
    /// Peak backlog observed in the backplane queue, in bytes — the
    /// quantity whose limit the paper's §3 saturation analysis computes
    /// against the 2.1 Gbit/s matrix-card capacity.
    pub trunk_peak_backlog: u64,
    /// Frames lost to injected random per-frame loss
    /// ([`FaultPlan::loss_prob`]); also counted in `frames_dropped`.
    pub faults_injected_losses: u64,
    /// Frames lost inside link-flap windows; also counted in
    /// `frames_dropped`.
    pub faults_flap_drops: u64,
    /// Frames deferred or slowed by pause windows.
    pub faults_paused_frames: u64,
    /// Background cross-traffic transfers injected by the fault plan.
    pub faults_background_transfers: u64,
}

/// A FIFO queue server: a resource that serves frames one at a time at a
/// fixed bit rate. `free_at` is when the server finishes everything
/// currently accepted; the backlog (in bytes) is derivable from it, giving a
/// O(1) finite-buffer occupancy test.
#[derive(Debug, Clone, Copy)]
struct Server {
    free_at: Time,
    rate_bps: u64,
    buffer_bytes: u64,
}

impl Server {
    fn new(rate_bps: u64, buffer_bytes: u64) -> Self {
        Server {
            free_at: Time::ZERO,
            rate_bps,
            buffer_bytes,
        }
    }

    /// Bytes currently queued (backlog duration × rate).
    fn backlog_bytes(&self, now: Time) -> u64 {
        let backlog = self.free_at.since(now);
        ((backlog.as_nanos() as u128 * self.rate_bps as u128) / (8 * 1_000_000_000)) as u64
    }

    /// Try to accept a frame of `wire_bytes` arriving at `now`; returns the
    /// service-completion time, or `None` if the buffer would overflow.
    fn accept(&mut self, now: Time, wire_bytes: u64, jitter: Dur) -> Option<Time> {
        if self.backlog_bytes(now) + wire_bytes > self.buffer_bytes {
            return None;
        }
        let start = self.free_at.max(now) + jitter;
        let done = start + wire_time(wire_bytes, self.rate_bps);
        self.free_at = done;
        Some(done)
    }
}

/// Which queue server a frame visits next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hop {
    /// Sender NIC of the given node (unbounded: the sender paces itself).
    Nic(NodeId),
    /// A switch's shared switching fabric (droppable).
    Fabric(usize),
    /// The single stacking backplane bus shared by all inter-switch
    /// traffic (droppable).
    Trunk,
    /// Destination node's switch egress port (droppable).
    Port(NodeId),
    /// Delivered to the destination host.
    Deliver,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Frame `seq` of transfer arrives at `hop`.
    Arrive {
        tid: TransferId,
        seq: u64,
        epoch: u32,
        hop_idx: u8,
    },
    /// Retransmission fires: go-back-N from the receiver's cursor. `fast`
    /// marks a duplicate-ACK fast retransmit (no RTO backoff).
    Retransmit {
        tid: TransferId,
        epoch: u32,
        fast: bool,
    },
    /// Intra-node (shared-memory) transfer completes.
    LocalDeliver { tid: TransferId },
}

#[derive(Debug, Clone)]
struct Transfer {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    nframes: u64,
    /// Receiver's go-back-N cursor: next in-order frame sequence expected.
    next_expected: u64,
    /// Current sender epoch; frames from older epochs are stale.
    epoch: u32,
    /// True once a drop has armed the retransmission timer for this epoch.
    retx_armed: bool,
    /// Current RTO (doubles per retransmission round, capped).
    rto: Dur,
    retransmissions: u32,
    /// Once a transfer has lost a frame, its retransmitted frames are
    /// injected paced (congestion avoidance stand-in).
    paced: bool,
    completed: bool,
    /// Whether the frame path crosses switches (has a trunk hop).
    inter_switch: bool,
    /// Fault-plan cross-traffic: occupies queues like any transfer but
    /// never surfaces a [`Completion`] to the protocol layer.
    background: bool,
}

/// The discrete-event network simulator.
pub struct Network {
    cfg: ClusterConfig,
    now: Time,
    nic: Vec<Server>,
    fabric: Vec<Server>,
    trunk: Server,
    port: Vec<Server>,
    transfers: Vec<Transfer>,
    heap: BinaryHeap<Reverse<(Time, u64, HeapEv)>>,
    heap_seq: u64,
    rng: SmallRng,
    stats: NetStats,
    completions: Vec<Completion>,
    /// Runtime form of the fault plan; `None` when the plan needs no
    /// per-event checks (no plan, or degrade/background only).
    faults: Option<ActiveFaults>,
    /// Injected-fault occurrences, for trace marks. Empty unless a fault
    /// plan is active.
    fault_events: Vec<FaultEvent>,
}

/// Per-event runtime state compiled from a [`FaultPlan`]. Only the parts
/// that must be consulted on the hot path live here; rate degradation is
/// applied to the [`Server`] rates once at construction and background
/// bursts are pre-scheduled as ordinary events.
#[derive(Debug, Clone, Default)]
struct ActiveFaults {
    loss_prob: f64,
    /// `(node, window_start, window_end)` link-down windows.
    flaps: Vec<(NodeId, Time, Time)>,
    /// `(node, window_start, window_end, slowdown)`; `slowdown == 0`
    /// defers to the window end, `>= 1` multiplies NIC service time.
    pauses: Vec<(NodeId, Time, Time, f64)>,
}

impl ActiveFaults {
    fn flap_active(&self, node: NodeId, now: Time) -> bool {
        self.flaps
            .iter()
            .any(|&(n, from, to)| n == node && now >= from && now < to)
    }

    /// An active pause window for `node`, as `(window_end, slowdown)`.
    fn pause_at(&self, node: NodeId, now: Time) -> Option<(Time, f64)> {
        self.pauses
            .iter()
            .find(|&&(n, from, to, _)| n == node && now >= from && now < to)
            .map(|&(_, _, to, slowdown)| (to, slowdown))
    }
}

/// Heap payload; ordering is (time, insertion sequence) so ties are broken
/// deterministically. `HeapEv` itself needs `Ord` for the tuple but its
/// ordering never decides (seq is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEv {
    kind: u8,
    tid: u64,
    seq: u64,
    epoch: u32,
    hop_idx: u8,
}

impl HeapEv {
    fn pack(ev: Ev) -> Self {
        match ev {
            Ev::Arrive {
                tid,
                seq,
                epoch,
                hop_idx,
            } => HeapEv {
                kind: 0,
                tid: tid.0,
                seq,
                epoch,
                hop_idx,
            },
            Ev::Retransmit { tid, epoch, fast } => HeapEv {
                kind: 1,
                tid: tid.0,
                seq: fast as u64,
                epoch,
                hop_idx: 0,
            },
            Ev::LocalDeliver { tid } => HeapEv {
                kind: 2,
                tid: tid.0,
                seq: 0,
                epoch: 0,
                hop_idx: 0,
            },
        }
    }

    fn unpack(self) -> Ev {
        match self.kind {
            0 => Ev::Arrive {
                tid: TransferId(self.tid),
                seq: self.seq,
                epoch: self.epoch,
                hop_idx: self.hop_idx,
            },
            1 => Ev::Retransmit {
                tid: TransferId(self.tid),
                epoch: self.epoch,
                fast: self.seq != 0,
            },
            _ => Ev::LocalDeliver {
                tid: TransferId(self.tid),
            },
        }
    }
}

impl Network {
    /// Create a network for the given cluster with a deterministic RNG seed.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid cluster config: {e}");
        }
        let nodes = cfg.nodes;
        let nswitches = cfg.num_switches();
        let mut net = Network {
            nic: (0..nodes)
                .map(|_| Server::new(cfg.link_bw_bps, u64::MAX / 4))
                .collect(),
            fabric: (0..nswitches)
                .map(|_| Server::new(cfg.fabric_bw_bps, cfg.fabric_buffer_bytes))
                .collect(),
            trunk: Server::new(cfg.trunk_bw_bps, cfg.trunk_buffer_bytes),
            port: (0..nodes)
                .map(|_| Server::new(cfg.link_bw_bps, cfg.port_buffer_bytes))
                .collect(),
            transfers: Vec::new(),
            heap: BinaryHeap::new(),
            heap_seq: 0,
            rng: SmallRng::seed_from_u64(seed),
            stats: NetStats::default(),
            completions: Vec::new(),
            faults: None,
            fault_events: Vec::new(),
            cfg,
            now: Time::ZERO,
        };
        if let Some(plan) = net.cfg.faults.clone() {
            net.apply_fault_plan(&plan);
        }
        net
    }

    /// Apply a validated fault plan: degrade link rates, pre-schedule
    /// background bursts, and compile the per-event windows. Called once
    /// from the constructor; an empty plan is a no-op (the
    /// pay-for-what-you-use contract).
    fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for d in &plan.degrade {
            let scale = |rate: u64| ((rate as f64 * d.rate_factor) as u64).max(1);
            self.nic[d.node].rate_bps = scale(self.nic[d.node].rate_bps);
            self.port[d.node].rate_bps = scale(self.port[d.node].rate_bps);
        }
        for b in &plan.background {
            for k in 0..b.count {
                let at = Time::from_secs_f64(b.start_secs + k as f64 * b.period_secs);
                self.start_background_transfer(at, b.src, b.dst, b.bytes);
            }
        }
        if plan.loss_prob > 0.0 || !plan.flaps.is_empty() || !plan.pauses.is_empty() {
            self.faults = Some(ActiveFaults {
                loss_prob: plan.loss_prob,
                flaps: plan
                    .flaps
                    .iter()
                    .map(|f| {
                        (
                            f.node,
                            Time::from_secs_f64(f.from_secs),
                            Time::from_secs_f64(f.to_secs),
                        )
                    })
                    .collect(),
                pauses: plan
                    .pauses
                    .iter()
                    .map(|p| {
                        (
                            p.node,
                            Time::from_secs_f64(p.at_secs),
                            Time::from_secs_f64(p.at_secs + p.duration_secs),
                            p.slowdown,
                        )
                    })
                    .collect(),
            });
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current virtual time (time of the last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn push(&mut self, at: Time, ev: Ev) {
        self.heap_seq += 1;
        self.heap
            .push(Reverse((at, self.heap_seq, HeapEv::pack(ev))));
    }

    fn jitter(&mut self) -> Dur {
        let mean = self.cfg.jitter_mean.as_nanos();
        if mean == 0 {
            return Dur::ZERO;
        }
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        Dur::from_nanos((-(u.ln()) * mean as f64) as u64)
    }

    /// Begin moving `bytes` from `src` to `dst` at virtual time `at`
    /// (must not be earlier than the engine's current time).
    pub fn start_transfer(&mut self, at: Time, src: NodeId, dst: NodeId, bytes: u64) -> TransferId {
        assert!(
            src < self.cfg.nodes && dst < self.cfg.nodes,
            "node out of range"
        );
        assert!(at >= self.now, "cannot start a transfer in the past");
        let tid = TransferId(self.transfers.len() as u64);
        let inter_switch = self.cfg.switch_of(src) != self.cfg.switch_of(dst);
        let nframes = self.cfg.frames_for(bytes);
        self.transfers.push(Transfer {
            src,
            dst,
            bytes,
            nframes,
            next_expected: 0,
            epoch: 0,
            retx_armed: false,
            rto: self.cfg.rto_base,
            retransmissions: 0,
            paced: false,
            completed: false,
            inter_switch,
            background: false,
        });

        if src == dst {
            // Intra-node: shared-memory copy, no network resources.
            let t = at
                + self.cfg.send_overhead
                + self.cfg.local_latency
                + wire_time(bytes, self.cfg.local_bw_bps)
                + self.cfg.recv_overhead;
            self.push(t, Ev::LocalDeliver { tid });
            return tid;
        }

        self.inject_frames(tid, at + self.cfg.send_overhead, 0, 0);
        tid
    }

    /// Inject a fault-plan background burst: moves through the same queue
    /// servers as user traffic, retransmits on drops, but never surfaces
    /// a [`Completion`].
    fn start_background_transfer(&mut self, at: Time, src: NodeId, dst: NodeId, bytes: u64) {
        let tid = TransferId(self.transfers.len() as u64);
        let inter_switch = self.cfg.switch_of(src) != self.cfg.switch_of(dst);
        self.transfers.push(Transfer {
            src,
            dst,
            bytes,
            nframes: self.cfg.frames_for(bytes),
            next_expected: 0,
            epoch: 0,
            retx_armed: false,
            rto: self.cfg.rto_base,
            retransmissions: 0,
            paced: false,
            completed: false,
            inter_switch,
            background: true,
        });
        self.stats.faults_background_transfers += 1;
        self.fault_events.push(FaultEvent {
            at,
            node: src,
            kind: FaultKind::BackgroundStart,
        });
        self.inject_frames(tid, at + self.cfg.send_overhead, 0, 0);
    }

    /// Queue frames `from_seq..nframes` of a transfer for injection at the
    /// sender, starting at `at`. Clean transfers are paced by the per-frame
    /// CPU overhead; transfers recovering from a loss are paced at a
    /// fraction of the link rate (congestion avoidance stand-in).
    fn inject_frames(&mut self, tid: TransferId, at: Time, from_seq: u64, epoch: u32) {
        let tr = &self.transfers[tid.0 as usize];
        let nframes = tr.nframes;
        let pace = if tr.paced {
            let wire = crate::time::wire_time(
                self.cfg.mtu + self.cfg.frame_overhead,
                self.cfg.link_bw_bps,
            );
            Dur::from_nanos(wire.as_nanos() * self.cfg.retx_pace_factor)
                .max(self.cfg.per_frame_overhead)
        } else {
            self.cfg.per_frame_overhead
        };
        let mut t = at;
        for seq in from_seq..nframes {
            t += pace;
            self.push(
                t,
                Ev::Arrive {
                    tid,
                    seq,
                    epoch,
                    hop_idx: 0,
                },
            );
        }
    }

    /// The hop sequence for a transfer's frames.
    ///
    /// Intra-switch: NIC → fabric → port → deliver.
    /// Inter-switch: NIC → fabric(src) → trunk(src) → fabric(dst) → port →
    /// deliver.
    fn hop(&self, tr: &Transfer, hop_idx: u8) -> Hop {
        match (hop_idx, tr.inter_switch) {
            (0, _) => Hop::Nic(tr.src),
            (1, _) => Hop::Fabric(self.cfg.switch_of(tr.src)),
            (2, false) => Hop::Port(tr.dst),
            (3, false) => Hop::Deliver,
            (2, true) => Hop::Trunk,
            (3, true) => Hop::Fabric(self.cfg.switch_of(tr.dst)),
            (4, true) => Hop::Port(tr.dst),
            (5, true) => Hop::Deliver,
            _ => unreachable!("hop index out of range"),
        }
    }

    /// Earliest pending event time, if any work remains.
    pub fn next_event_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Process all events up to and including virtual time `t`. Returns the
    /// transfers that completed during this window, in completion order.
    pub fn advance_until(&mut self, t: Time) -> Vec<Completion> {
        while let Some(Reverse((et, _, _))) = self.heap.peek() {
            if *et > t {
                break;
            }
            let Some(Reverse((et, _, hev))) = self.heap.pop() else {
                break;
            };
            self.now = et;
            self.stats.events_processed += 1;
            self.handle(et, hev.unpack());
        }
        self.now = self.now.max(t);
        std::mem::take(&mut self.completions)
    }

    /// Drain every pending event. Returns all completions.
    pub fn run_to_completion(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event_time() {
            out.extend(self.advance_until(t));
        }
        out
    }

    fn handle(&mut self, now: Time, ev: Ev) {
        match ev {
            Ev::LocalDeliver { tid } => self.complete(tid, now),
            Ev::Retransmit { tid, epoch, fast } => {
                let tr = &mut self.transfers[tid.0 as usize];
                if tr.completed || tr.epoch != epoch {
                    return; // stale timer
                }
                tr.epoch += 1;
                tr.retx_armed = false;
                tr.retransmissions += 1;
                tr.paced = true;
                if !fast {
                    // Only full timeouts escalate the RTO.
                    tr.rto =
                        Dur::from_nanos((tr.rto.as_nanos() * 2).min(self.cfg.rto_max.as_nanos()));
                }
                self.stats.retransmissions += 1;
                let (from_seq, epoch) = (tr.next_expected, tr.epoch);
                self.inject_frames(tid, now, from_seq, epoch);
            }
            Ev::Arrive {
                tid,
                seq,
                epoch,
                hop_idx,
            } => {
                let tr = self.transfers[tid.0 as usize].clone();
                if tr.completed || epoch != tr.epoch {
                    return; // stale frame from a superseded epoch
                }
                match self.hop(&tr, hop_idx) {
                    Hop::Deliver => {
                        let t = &mut self.transfers[tid.0 as usize];
                        if seq == t.next_expected {
                            t.next_expected += 1;
                            if t.next_expected == t.nframes {
                                let done = now + self.cfg.recv_overhead;
                                self.complete(tid, done);
                            }
                        }
                        // Out-of-order frames (after a drop) are discarded:
                        // go-back-N will resend them.
                    }
                    hop => {
                        let mut wire = self.cfg.frame_wire_bytes(tr.bytes, seq);
                        // Injected faults: every check below is gated on an
                        // active plan, so the no-fault path is untouched
                        // (same branches, same RNG draws).
                        if self.faults.is_some() {
                            if let Hop::Nic(n) | Hop::Port(n) = hop {
                                let down =
                                    self.faults.as_ref().is_some_and(|f| f.flap_active(n, now));
                                if down {
                                    self.stats.faults_flap_drops += 1;
                                    self.fault_events.push(FaultEvent {
                                        at: now,
                                        node: n,
                                        kind: FaultKind::FlapDrop,
                                    });
                                    self.frame_dropped(now, tid, seq);
                                    return;
                                }
                            }
                            if let Hop::Nic(n) = hop {
                                let pause = self.faults.as_ref().and_then(|f| f.pause_at(n, now));
                                if let Some((window_end, slowdown)) = pause {
                                    self.stats.faults_paused_frames += 1;
                                    self.fault_events.push(FaultEvent {
                                        at: now,
                                        node: n,
                                        kind: FaultKind::Paused,
                                    });
                                    if slowdown == 0.0 {
                                        // Full pause: re-arrive when the
                                        // window closes.
                                        self.push(
                                            window_end,
                                            Ev::Arrive {
                                                tid,
                                                seq,
                                                epoch,
                                                hop_idx,
                                            },
                                        );
                                        return;
                                    }
                                    // Slowdown: the NIC serves this frame
                                    // `slowdown ×` slower.
                                    wire = (wire as f64 * slowdown) as u64;
                                }
                            }
                        }
                        let jit = self.jitter();
                        let (accepted, droppable) = match hop {
                            Hop::Nic(n) => (self.nic[n].accept(now, wire, jit), false),
                            Hop::Fabric(s) => (self.fabric[s].accept(now, wire, jit), true),
                            Hop::Trunk => {
                                let backlog = self.trunk.backlog_bytes(now);
                                let accepted = self.trunk.accept(now, wire, jit);
                                if accepted.is_some() {
                                    self.stats.trunk_bytes += wire;
                                    self.stats.trunk_peak_backlog =
                                        self.stats.trunk_peak_backlog.max(backlog + wire);
                                }
                                (accepted, true)
                            }
                            Hop::Port(n) => (self.port[n].accept(now, wire, jit), true),
                            Hop::Deliver => unreachable!(),
                        };
                        match accepted {
                            Some(done) => {
                                if hop_idx == 0 {
                                    self.stats.frames_sent += 1;
                                    // Injected per-frame loss: the frame
                                    // occupied the NIC (it was transmitted)
                                    // but never reaches the next hop. The
                                    // RNG is only consulted when the plan
                                    // sets a positive probability.
                                    let loss = self.faults.as_ref().map_or(0.0, |f| f.loss_prob);
                                    if loss > 0.0 && self.rng.gen::<f64>() < loss {
                                        self.stats.faults_injected_losses += 1;
                                        self.fault_events.push(FaultEvent {
                                            at: now,
                                            node: tr.src,
                                            kind: FaultKind::InjectedLoss,
                                        });
                                        self.frame_dropped(now, tid, seq);
                                        return;
                                    }
                                }
                                self.push(
                                    done + self.cfg.hop_latency,
                                    Ev::Arrive {
                                        tid,
                                        seq,
                                        epoch,
                                        hop_idx: hop_idx + 1,
                                    },
                                );
                            }
                            None => {
                                debug_assert!(droppable);
                                self.frame_dropped(now, tid, seq);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A frame of `tid` was lost (buffer overflow or injected fault):
    /// count the drop and arm go-back-N recovery — fast retransmit when
    /// enough successor frames can raise duplicate ACKs, otherwise the
    /// full RTO, both jittered to desynchronise flows that dropped
    /// together the way per-connection TCP timers would.
    fn frame_dropped(&mut self, now: Time, tid: TransferId, seq: u64) {
        self.stats.frames_dropped += 1;
        let jfrac: f64 = if self.cfg.rto_jitter > 0.0 {
            self.rng.gen::<f64>() * self.cfg.rto_jitter
        } else {
            0.0
        };
        let fast_delay = self.cfg.fast_retx_delay;
        let t = &mut self.transfers[tid.0 as usize];
        if !t.retx_armed {
            t.retx_armed = true;
            // Fast retransmit needs >= 3 successor frames to trigger
            // duplicate ACKs; a tail loss must wait out the RTO.
            let fast = seq + 3 < t.nframes;
            let delay = if fast {
                Dur::from_nanos((fast_delay.as_nanos() as f64 * (1.0 + jfrac)) as u64)
            } else {
                Dur::from_nanos((t.rto.as_nanos() as f64 * (1.0 + jfrac)) as u64)
            };
            let ep = t.epoch;
            self.push(
                now + delay,
                Ev::Retransmit {
                    tid,
                    epoch: ep,
                    fast,
                },
            );
        }
    }

    fn complete(&mut self, tid: TransferId, at: Time) {
        let tr = &mut self.transfers[tid.0 as usize];
        debug_assert!(!tr.completed, "transfer completed twice");
        tr.completed = true;
        if tr.background {
            // Fault-plan cross-traffic is invisible to the protocol layer:
            // no Completion, no goodput accounting.
            return;
        }
        self.stats.transfers_completed += 1;
        self.stats.bytes_delivered += tr.bytes;
        self.completions.push(Completion {
            id: tid,
            delivered_at: at,
            retransmissions: tr.retransmissions,
        });
    }

    /// Whether the given transfer has been delivered.
    pub fn is_completed(&self, tid: TransferId) -> bool {
        self.transfers[tid.0 as usize].completed
    }

    /// Injected-fault occurrences so far (empty without an active plan).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Drain the recorded injected-fault occurrences.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.fault_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal(nodes: usize) -> Network {
        Network::new(ClusterConfig::ideal(nodes), 1)
    }

    #[test]
    fn single_small_transfer_takes_wire_time() {
        let mut net = ideal(2);
        let tid = net.start_transfer(Time::ZERO, 0, 1, 100);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, tid);
        assert_eq!(done[0].retransmissions, 0);
        // One 138-wire-byte frame (100B payload + 38 overhead) over NIC,
        // switch fabric and port.
        let expect =
            2 * wire_time(138, 100_000_000).as_nanos() + wire_time(138, 2_100_000_000).as_nanos();
        assert_eq!(done[0].delivered_at.as_nanos(), expect);
    }

    #[test]
    fn zero_byte_message_still_costs_a_frame() {
        let mut net = ideal(2);
        net.start_transfer(Time::ZERO, 0, 1, 0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!(done[0].delivered_at > Time::ZERO);
    }

    #[test]
    fn large_transfer_pipelines_frames() {
        let mut net = ideal(2);
        // 15000 B = 10 frames. Pipelined store-and-forward: NIC serialises
        // 10 frames back-to-back; the port finishes one frame behind.
        net.start_transfer(Time::ZERO, 0, 1, 15_000);
        let done = net.run_to_completion();
        let frame = wire_time(1538, 100_000_000).as_nanos();
        let fab = wire_time(1538, 2_100_000_000).as_nanos();
        // NIC serialises 10 frames back-to-back; the fast fabric adds one
        // frame-time; the port finishes one frame behind the NIC.
        let expect = 10 * frame + fab + frame;
        assert_eq!(done[0].delivered_at.as_nanos(), expect);
    }

    #[test]
    fn intra_node_transfer_bypasses_network() {
        let mut net = ideal(4);
        net.start_transfer(Time::ZERO, 2, 2, 1_000_000);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].delivered_at.as_nanos(),
            wire_time(1_000_000, 1_200_000_000).as_nanos()
        );
        assert_eq!(net.stats().frames_sent, 0);
    }

    #[test]
    fn nic_is_shared_between_concurrent_sends_from_same_node() {
        let mut net = ideal(3);
        // Two messages leave node 0 at the same instant to different dests.
        net.start_transfer(Time::ZERO, 0, 1, 1_500);
        net.start_transfer(Time::ZERO, 0, 2, 1_500);
        let done = net.run_to_completion();
        let frame = wire_time(1538, 100_000_000).as_nanos();
        let fab = wire_time(1538, 2_100_000_000).as_nanos();
        let times: Vec<u64> = done.iter().map(|c| c.delivered_at.as_nanos()).collect();
        // First message: NIC + fabric + port. Second: waits one frame at
        // the NIC (the fabric drains faster than the NIC feeds it).
        assert_eq!(times[0], 2 * frame + fab);
        assert_eq!(times[1], 3 * frame + fab);
    }

    #[test]
    fn incast_contends_at_destination_port() {
        let mut net = ideal(3);
        // Nodes 1 and 2 send to node 0 simultaneously: port 0 serialises.
        net.start_transfer(Time::ZERO, 1, 0, 1_500);
        net.start_transfer(Time::ZERO, 2, 0, 1_500);
        let done = net.run_to_completion();
        let frame = wire_time(1538, 100_000_000).as_nanos();
        let fab = wire_time(1538, 2_100_000_000).as_nanos();
        let mut times: Vec<u64> = done.iter().map(|c| c.delivered_at.as_nanos()).collect();
        times.sort_unstable();
        // Both arrive at the fabric together; the second queues a full port
        // frame-time behind the first (its extra fabric wait is absorbed
        // into the port queueing).
        assert_eq!(times[0], 2 * frame + fab);
        assert_eq!(times[1], 3 * frame + fab);
    }

    #[test]
    fn inter_switch_path_has_trunk_hop() {
        let mut cfg = ClusterConfig::ideal(4);
        cfg.switch_ports = 2; // nodes 0,1 on switch 0; nodes 2,3 on switch 1
        let mut net = Network::new(cfg, 1);
        net.start_transfer(Time::ZERO, 0, 2, 100);
        let done = net.run_to_completion();
        let link = wire_time(138, 100_000_000).as_nanos();
        let trunk = wire_time(138, 2_100_000_000).as_nanos();
        // NIC + src fabric + trunk + dst fabric + port (fabric and trunk
        // run at the same 2.1 Gbit/s rate here).
        assert_eq!(done[0].delivered_at.as_nanos(), 2 * link + 3 * trunk);
    }

    #[test]
    fn drops_trigger_rto_and_recovery() {
        let mut cfg = ClusterConfig::ideal(3);
        cfg.port_buffer_bytes = 2_000; // room for ~1 frame
        let mut net = Network::new(cfg, 1);
        // Two senders blast 10 frames each at node 0: the port must drop.
        net.start_transfer(Time::ZERO, 1, 0, 15_000);
        net.start_transfer(Time::ZERO, 2, 0, 15_000);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2, "both transfers must eventually complete");
        assert!(net.stats().frames_dropped > 0, "expected drops");
        assert!(net.stats().retransmissions > 0, "expected retransmissions");
        // Recovery (fast retransmit at best) delays at least one transfer
        // well past the clean pipeline time of ~1.4 ms.
        assert!(done
            .iter()
            .any(|c| c.delivered_at >= Time::from_secs_f64(0.003)));
        assert!(done.iter().any(|c| c.retransmissions > 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(ClusterConfig::perseus(8), seed);
            for i in 0..4usize {
                net.start_transfer(Time::ZERO, i, i + 4, 4_096);
            }
            let mut done = net.run_to_completion();
            done.sort_by_key(|c| c.id);
            done.iter()
                .map(|c| c.delivered_at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should differ with jitter on"
        );
    }

    #[test]
    fn jitter_broadens_but_never_shrinks_minimum() {
        let base = {
            let mut net = ideal(2);
            net.start_transfer(Time::ZERO, 0, 1, 1_024);
            net.run_to_completion()[0].delivered_at
        };
        for seed in 0..20 {
            let mut cfg = ClusterConfig::ideal(2);
            cfg.jitter_mean = Dur::from_micros(5);
            let mut net = Network::new(cfg, seed);
            net.start_transfer(Time::ZERO, 0, 1, 1_024);
            let t = net.run_to_completion()[0].delivered_at;
            assert!(
                t >= base,
                "jittered time {t} below contention-free minimum {base}"
            );
        }
    }

    #[test]
    fn advance_until_respects_time_boundary() {
        let mut net = ideal(2);
        net.start_transfer(Time::ZERO, 0, 1, 100);
        let nothing = net.advance_until(Time(1));
        assert!(nothing.is_empty());
        let all = net.advance_until(Time(1_000_000_000));
        assert_eq!(all.len(), 1);
        assert_eq!(net.now(), Time(1_000_000_000));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn starting_in_the_past_panics() {
        let mut net = ideal(2);
        net.start_transfer(Time::ZERO, 0, 1, 100);
        net.run_to_completion();
        net.start_transfer(Time::ZERO, 1, 0, 100);
    }

    #[test]
    fn stats_account_for_traffic() {
        let mut net = ideal(2);
        net.start_transfer(Time::ZERO, 0, 1, 4_500); // 3 frames
        net.run_to_completion();
        let s = net.stats();
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.transfers_completed, 1);
        assert_eq!(s.bytes_delivered, 4_500);
        assert_eq!(s.frames_dropped, 0);
    }

    #[test]
    fn trunk_stats_track_backplane_traffic() {
        let mut cfg = ClusterConfig::ideal(4);
        cfg.switch_ports = 2; // nodes {0,1} and {2,3} on separate switches
        let mut net = Network::new(cfg, 1);
        net.start_transfer(Time::ZERO, 0, 2, 3_000); // crosses: 2 frames
        net.start_transfer(Time::ZERO, 0, 1, 3_000); // same switch: no trunk
        net.run_to_completion();
        let s = net.stats();
        assert_eq!(s.trunk_bytes, 2 * 1538);
        assert!(s.trunk_peak_backlog >= 1538);
        assert!(s.trunk_peak_backlog <= 2 * 1538);
    }

    #[test]
    fn injected_loss_drops_frames_but_transfers_recover() {
        let mut cfg = ClusterConfig::ideal(4);
        cfg.faults = Some(crate::faults::FaultPlan {
            loss_prob: 0.2,
            ..Default::default()
        });
        let mut net = Network::new(cfg, 3);
        for i in 0..3usize {
            net.start_transfer(Time::ZERO, i, 3, 15_000);
        }
        let done = net.run_to_completion();
        assert_eq!(done.len(), 3, "all transfers must complete despite loss");
        let s = net.stats();
        assert!(s.faults_injected_losses > 0, "expected injected losses");
        assert_eq!(s.frames_dropped, s.faults_injected_losses);
        assert!(s.retransmissions > 0);
        assert!(net
            .fault_events()
            .iter()
            .any(|e| e.kind == crate::faults::FaultKind::InjectedLoss));
    }

    #[test]
    fn degraded_link_slows_delivery_proportionally() {
        let clean = {
            let mut net = ideal(2);
            net.start_transfer(Time::ZERO, 0, 1, 15_000);
            net.run_to_completion()[0].delivered_at.as_nanos()
        };
        let mut cfg = ClusterConfig::ideal(2);
        cfg.faults = Some(crate::faults::FaultPlan {
            degrade: vec![crate::faults::LinkDegrade {
                node: 0,
                rate_factor: 0.5,
            }],
            ..Default::default()
        });
        let mut net = Network::new(cfg, 1);
        net.start_transfer(Time::ZERO, 0, 1, 15_000);
        let slow = net.run_to_completion()[0].delivered_at.as_nanos();
        // The sender NIC at half rate roughly doubles the serialisation
        // time that dominates this pipeline.
        assert!(
            slow > clean * 18 / 10,
            "half-rate link should ~double delivery: clean={clean} slow={slow}"
        );
    }

    #[test]
    fn link_flap_window_loses_frames_then_recovers() {
        let mut cfg = ClusterConfig::ideal(2);
        cfg.faults = Some(crate::faults::FaultPlan {
            flaps: vec![crate::faults::LinkFlap {
                node: 0,
                from_secs: 0.0,
                to_secs: 0.005,
            }],
            ..Default::default()
        });
        let mut net = Network::new(cfg, 1);
        net.start_transfer(Time::ZERO, 0, 1, 1_000);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!(net.stats().faults_flap_drops > 0);
        // Delivery can only happen after the link comes back up.
        assert!(done[0].delivered_at >= Time::from_secs_f64(0.005));
    }

    #[test]
    fn background_traffic_contends_but_is_invisible() {
        let quiet = {
            let mut net = ideal(3);
            net.start_transfer(Time::ZERO, 1, 0, 15_000);
            net.run_to_completion()[0].delivered_at.as_nanos()
        };
        let mut cfg = ClusterConfig::ideal(3);
        cfg.faults = Some(crate::faults::FaultPlan {
            background: vec![crate::faults::Background {
                src: 2,
                dst: 0,
                bytes: 15_000,
                start_secs: 0.0,
                period_secs: 0.001,
                count: 4,
            }],
            ..Default::default()
        });
        let mut net = Network::new(cfg, 1);
        let tid = net.start_transfer(Time::ZERO, 1, 0, 15_000);
        let done = net.run_to_completion();
        // Only the user transfer surfaces; the bursts contend at port 0.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, tid);
        assert_eq!(net.stats().faults_background_transfers, 4);
        assert_eq!(net.stats().transfers_completed, 1);
        assert!(
            done[0].delivered_at.as_nanos() > quiet,
            "cross-traffic should delay the user transfer"
        );
    }

    #[test]
    fn pause_defers_and_slowdown_stretches() {
        let clean = {
            let mut net = ideal(2);
            net.start_transfer(Time::ZERO, 0, 1, 1_000);
            net.run_to_completion()[0].delivered_at
        };
        let paused = {
            let mut cfg = ClusterConfig::ideal(2);
            cfg.faults = Some(crate::faults::FaultPlan {
                pauses: vec![crate::faults::Pause {
                    node: 0,
                    at_secs: 0.0,
                    duration_secs: 0.01,
                    slowdown: 0.0,
                }],
                ..Default::default()
            });
            let mut net = Network::new(cfg, 1);
            net.start_transfer(Time::ZERO, 0, 1, 1_000);
            let done = net.run_to_completion();
            assert!(net.stats().faults_paused_frames > 0);
            done[0].delivered_at
        };
        assert!(paused >= Time::from_secs_f64(0.01));
        let slowed = {
            let mut cfg = ClusterConfig::ideal(2);
            cfg.faults = Some(crate::faults::FaultPlan {
                pauses: vec![crate::faults::Pause {
                    node: 0,
                    at_secs: 0.0,
                    duration_secs: 0.01,
                    slowdown: 4.0,
                }],
                ..Default::default()
            });
            let mut net = Network::new(cfg, 1);
            net.start_transfer(Time::ZERO, 0, 1, 1_000);
            net.run_to_completion()[0].delivered_at
        };
        assert!(slowed > clean && slowed < paused);
    }

    #[test]
    fn faulted_runs_are_deterministic_given_seed() {
        let run = |seed: u64| {
            let mut cfg = ClusterConfig::perseus(8);
            cfg.faults = Some(crate::faults::FaultPlan {
                loss_prob: 0.05,
                ..Default::default()
            });
            let mut net = Network::new(cfg, seed);
            for i in 0..4usize {
                net.start_transfer(Time::ZERO, i, i + 4, 16_384);
            }
            let mut done = net.run_to_completion();
            done.sort_by_key(|c| c.id);
            done.iter()
                .map(|c| c.delivered_at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn trunk_saturation_slows_cross_switch_flows() {
        // 24 concurrent cross-switch flows of large messages should see
        // worse per-flow times than a single flow does, because the trunk
        // (2.1 Gbit/s) cannot carry 24 × ~84 Mbit/s for free... but a single
        // flow is untouched. This is the Figure 4 mechanism in miniature.
        let mut cfg = ClusterConfig::perseus(48);
        cfg.jitter_mean = Dur::ZERO;
        let solo = {
            let mut net = Network::new(cfg.clone(), 1);
            net.start_transfer(Time::ZERO, 0, 24, 65_536);
            net.run_to_completion()[0].delivered_at.as_nanos()
        };
        let crowd = {
            let mut net = Network::new(cfg, 1);
            for i in 0..24usize {
                net.start_transfer(Time::ZERO, i, 24 + i, 65_536);
            }
            let done = net.run_to_completion();
            done.iter()
                .map(|c| c.delivered_at.as_nanos())
                .max()
                .unwrap()
        };
        assert!(
            crowd > solo * 11 / 10,
            "expected trunk contention to slow the crowd: solo={solo} crowd={crowd}"
        );
    }
}
