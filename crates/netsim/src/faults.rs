//! Scenario-driven fault injection.
//!
//! The engine in [`network`](crate::network) produces frame drops
//! *emergently* (finite buffers overflow under contention). This module
//! adds **injected** faults on top — the degraded-machine scenarios the
//! robustness study sweeps over:
//!
//! - random per-frame loss with probability [`FaultPlan::loss_prob`]
//!   (cabling/duplex-mismatch style losses);
//! - per-link degradation ([`LinkDegrade`]): a node's NIC and switch port
//!   run at a fraction of the configured link rate (half-duplex fallback,
//!   flaky autonegotiation);
//! - time-windowed link flaps ([`LinkFlap`]): every frame entering or
//!   leaving a node while its link is down is lost;
//! - background cross-traffic bursts ([`Background`]): periodic transfers
//!   between nodes that occupy queues but are invisible to the MPI layer;
//! - per-node pause/slowdown windows ([`Pause`]): OS stalls that defer or
//!   slow a node's NIC for a time window.
//!
//! All injected randomness is drawn from the engine's existing RNG stream,
//! so a faulted run is bitwise reproducible from `(config, seed)`. The
//! layer is strictly pay-for-what-you-use: a plan with zero loss
//! probability and no events leaves the event and RNG sequences *bitwise
//! identical* to having no plan at all (property-tested in
//! `tests/prop_faults.rs`).
//!
//! Plans are embedded in [`ClusterConfig::faults`](crate::ClusterConfig)
//! and can be loaded from a small TOML-subset scenario file via
//! [`FaultPlan::parse_toml`]; see `DESIGN.md` ("Fault model & degraded
//! operation") for the schema.

use crate::config::{ClusterConfig, NodeId};
use crate::time::Time;
use std::fmt;

/// Error raised while parsing or validating a fault scenario.
///
/// `line` is the 1-based scenario-file line for parse errors, `None` for
/// semantic validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// 1-based line number in the scenario source, when known.
    pub line: Option<usize>,
    /// Human-readable description naming the offending key or section.
    pub message: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for FaultError {}

fn err(line: Option<usize>, message: impl Into<String>) -> FaultError {
    FaultError {
        line,
        message: message.into(),
    }
}

/// Sentinel for "required key not set" on node indices.
const NODE_UNSET: usize = usize::MAX;

/// Cap one node's NIC and switch-port rate at `rate_factor ×` link rate.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDegrade {
    /// Affected node.
    pub node: NodeId,
    /// Rate multiplier in `(0, 1]` (0.5 = half-duplex-style halving).
    pub rate_factor: f64,
}

impl Default for LinkDegrade {
    fn default() -> Self {
        LinkDegrade {
            node: NODE_UNSET,
            rate_factor: f64::NAN,
        }
    }
}

/// A node's link is down during `[from_secs, to_secs)`; frames entering
/// its NIC or egress port in the window are lost.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFlap {
    /// Affected node.
    pub node: NodeId,
    /// Window start, seconds of virtual time.
    pub from_secs: f64,
    /// Window end (exclusive), seconds of virtual time.
    pub to_secs: f64,
}

impl Default for LinkFlap {
    fn default() -> Self {
        LinkFlap {
            node: NODE_UNSET,
            from_secs: f64::NAN,
            to_secs: f64::NAN,
        }
    }
}

/// Periodic background cross-traffic: `count` transfers of `bytes` from
/// `src` to `dst`, the k-th starting at `start_secs + k × period_secs`.
///
/// Background transfers occupy NICs, fabrics, the trunk and ports like any
/// other traffic but produce no [`Completion`](crate::Completion) — the
/// protocol layer above never sees them.
#[derive(Debug, Clone, PartialEq)]
pub struct Background {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload bytes per burst.
    pub bytes: u64,
    /// Start of the first burst, seconds of virtual time.
    pub start_secs: f64,
    /// Seconds between burst starts (required when `count > 1`).
    pub period_secs: f64,
    /// Number of bursts.
    pub count: u64,
}

impl Default for Background {
    fn default() -> Self {
        Background {
            src: NODE_UNSET,
            dst: NODE_UNSET,
            bytes: 0,
            start_secs: 0.0,
            period_secs: 0.0,
            count: 1,
        }
    }
}

/// A per-node stall: during `[at_secs, at_secs + duration_secs)` the
/// node's NIC either defers all frames to the window end (`slowdown = 0`,
/// the default — a full pause) or serves them `slowdown ×` slower
/// (`slowdown ≥ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Pause {
    /// Affected node.
    pub node: NodeId,
    /// Window start, seconds of virtual time.
    pub at_secs: f64,
    /// Window length, seconds.
    pub duration_secs: f64,
    /// `0` = full pause; `≥ 1` = service-time multiplier during the window.
    pub slowdown: f64,
}

impl Default for Pause {
    fn default() -> Self {
        Pause {
            node: NODE_UNSET,
            at_secs: f64::NAN,
            duration_secs: f64::NAN,
            slowdown: 0.0,
        }
    }
}

/// A deterministic, seedable fault-injection scenario.
///
/// An empty (default) plan injects nothing and — by the pay-for-what-you-
/// use contract — is bitwise indistinguishable from `faults: None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that any individual transmitted frame is lost on the
    /// wire, in `[0, 1)`. Drawn per frame from the engine RNG stream
    /// (only when positive, preserving the no-fault stream).
    pub loss_prob: f64,
    /// Per-link rate caps.
    pub degrade: Vec<LinkDegrade>,
    /// Link-down windows.
    pub flaps: Vec<LinkFlap>,
    /// Background cross-traffic bursts.
    pub background: Vec<Background>,
    /// Node pause/slowdown windows.
    pub pauses: Vec<Pause>,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loss_prob == 0.0
            && self.degrade.is_empty()
            && self.flaps.is_empty()
            && self.background.is_empty()
            && self.pauses.is_empty()
    }

    /// Validate the plan against a cluster: node indices in range, rates
    /// and probabilities in their domains, windows well-formed. Errors
    /// name the offending section, entry and key.
    pub fn validate(&self, cfg: &ClusterConfig) -> Result<(), FaultError> {
        let nodes = cfg.nodes;
        let check_node = |section: &str, i: usize, key: &str, node: usize| {
            if node == NODE_UNSET {
                Err(err(
                    None,
                    format!("[[{section}]] #{i}: missing key `{key}`"),
                ))
            } else if node >= nodes {
                Err(err(
                    None,
                    format!(
                        "[[{section}]] #{i}: `{key}` = {node} out of range (cluster has {nodes} nodes)"
                    ),
                ))
            } else {
                Ok(())
            }
        };
        if !(self.loss_prob >= 0.0 && self.loss_prob < 1.0) {
            return Err(err(
                None,
                format!(
                    "`loss_prob` = {} must be in [0, 1) (a probability per transmitted frame)",
                    self.loss_prob
                ),
            ));
        }
        for (i, d) in self.degrade.iter().enumerate() {
            let i = i + 1;
            check_node("degrade", i, "node", d.node)?;
            if d.rate_factor.is_nan() {
                return Err(err(
                    None,
                    format!("[[degrade]] #{i}: missing key `rate_factor`"),
                ));
            }
            if !(d.rate_factor > 0.0 && d.rate_factor <= 1.0) {
                return Err(err(
                    None,
                    format!(
                        "[[degrade]] #{i}: `rate_factor` = {} must be in (0, 1]",
                        d.rate_factor
                    ),
                ));
            }
        }
        for (i, fl) in self.flaps.iter().enumerate() {
            let i = i + 1;
            check_node("flap", i, "node", fl.node)?;
            if fl.from_secs.is_nan() {
                return Err(err(None, format!("[[flap]] #{i}: missing key `from`")));
            }
            if fl.to_secs.is_nan() {
                return Err(err(None, format!("[[flap]] #{i}: missing key `to`")));
            }
            if !(fl.from_secs >= 0.0 && fl.to_secs > fl.from_secs && fl.to_secs.is_finite()) {
                return Err(err(
                    None,
                    format!(
                        "[[flap]] #{i}: window [{}, {}) must satisfy 0 <= from < to",
                        fl.from_secs, fl.to_secs
                    ),
                ));
            }
        }
        for (i, b) in self.background.iter().enumerate() {
            let i = i + 1;
            check_node("background", i, "src", b.src)?;
            check_node("background", i, "dst", b.dst)?;
            if b.src == b.dst {
                return Err(err(
                    None,
                    format!(
                        "[[background]] #{i}: `src` and `dst` must differ (node {})",
                        b.src
                    ),
                ));
            }
            if b.bytes == 0 {
                return Err(err(
                    None,
                    format!("[[background]] #{i}: `bytes` must be >= 1"),
                ));
            }
            if b.count == 0 {
                return Err(err(
                    None,
                    format!("[[background]] #{i}: `count` must be >= 1"),
                ));
            }
            if !(b.start_secs >= 0.0 && b.start_secs.is_finite()) {
                return Err(err(
                    None,
                    format!(
                        "[[background]] #{i}: `start` = {} must be >= 0",
                        b.start_secs
                    ),
                ));
            }
            if b.count > 1 && !(b.period_secs > 0.0 && b.period_secs.is_finite()) {
                return Err(err(
                    None,
                    format!(
                        "[[background]] #{i}: `period` = {} must be > 0 when count > 1",
                        b.period_secs
                    ),
                ));
            }
        }
        for (i, p) in self.pauses.iter().enumerate() {
            let i = i + 1;
            check_node("pause", i, "node", p.node)?;
            if p.at_secs.is_nan() {
                return Err(err(None, format!("[[pause]] #{i}: missing key `at`")));
            }
            if p.duration_secs.is_nan() {
                return Err(err(None, format!("[[pause]] #{i}: missing key `duration`")));
            }
            if !(p.at_secs >= 0.0 && p.at_secs.is_finite()) {
                return Err(err(
                    None,
                    format!("[[pause]] #{i}: `at` = {} must be >= 0", p.at_secs),
                ));
            }
            if !(p.duration_secs > 0.0 && p.duration_secs.is_finite()) {
                return Err(err(
                    None,
                    format!(
                        "[[pause]] #{i}: `duration` = {} must be > 0",
                        p.duration_secs
                    ),
                ));
            }
            if !(p.slowdown == 0.0 || p.slowdown >= 1.0) {
                return Err(err(
                    None,
                    format!(
                        "[[pause]] #{i}: `slowdown` = {} must be 0 (full pause) or >= 1",
                        p.slowdown
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Parse a scenario file written in the TOML subset described in
    /// `DESIGN.md`: top-level `key = value` pairs plus `[[degrade]]`,
    /// `[[flap]]`, `[[background]]` and `[[pause]]` arrays of tables with
    /// numeric values. `#` starts a comment. Errors carry the 1-based
    /// source line and name the offending key.
    ///
    /// Parsing checks syntax only; call [`FaultPlan::validate`] against
    /// the target cluster before use.
    pub fn parse_toml(src: &str) -> Result<FaultPlan, FaultError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            Top,
            Degrade,
            Flap,
            Background,
            Pause,
        }
        let mut plan = FaultPlan::default();
        let mut section = Section::Top;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = match name.trim() {
                    "degrade" => {
                        plan.degrade.push(LinkDegrade::default());
                        Section::Degrade
                    }
                    "flap" => {
                        plan.flaps.push(LinkFlap::default());
                        Section::Flap
                    }
                    "background" => {
                        plan.background.push(Background::default());
                        Section::Background
                    }
                    "pause" => {
                        plan.pauses.push(Pause::default());
                        Section::Pause
                    }
                    other => {
                        return Err(err(
                            Some(lineno),
                            format!(
                                "unknown section `[[{other}]]` (expected degrade, flap, background or pause)"
                            ),
                        ))
                    }
                };
                continue;
            }
            if line.starts_with('[') {
                return Err(err(
                    Some(lineno),
                    format!("`{line}`: sections must be arrays of tables, e.g. `[[flap]]`"),
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(
                    Some(lineno),
                    format!("`{line}`: expected `key = value` or `[[section]]`"),
                ));
            };
            let key = key.trim();
            let value = value.trim();
            let num = |what: &str| -> Result<f64, FaultError> {
                value.parse::<f64>().map_err(|_| {
                    err(
                        Some(lineno),
                        format!("key `{key}`: `{value}` is not a valid {what}"),
                    )
                })
            };
            let index = |what: &str| -> Result<usize, FaultError> {
                value.parse::<usize>().map_err(|_| {
                    err(
                        Some(lineno),
                        format!("key `{key}`: `{value}` is not a valid {what}"),
                    )
                })
            };
            let unknown = |section_name: &str| {
                err(
                    Some(lineno),
                    format!("unknown key `{key}` in [[{section_name}]]"),
                )
            };
            match section {
                Section::Top => match key {
                    "loss_prob" => plan.loss_prob = num("probability")?,
                    _ => {
                        return Err(err(
                            Some(lineno),
                            format!("unknown top-level key `{key}` (expected `loss_prob`)"),
                        ))
                    }
                },
                Section::Degrade => {
                    let d = plan
                        .degrade
                        .last_mut()
                        .ok_or_else(|| err(Some(lineno), "internal: no open section"))?;
                    match key {
                        "node" => d.node = index("node index")?,
                        "rate_factor" => d.rate_factor = num("number")?,
                        _ => return Err(unknown("degrade")),
                    }
                }
                Section::Flap => {
                    let fl = plan
                        .flaps
                        .last_mut()
                        .ok_or_else(|| err(Some(lineno), "internal: no open section"))?;
                    match key {
                        "node" => fl.node = index("node index")?,
                        "from" => fl.from_secs = num("time in seconds")?,
                        "to" => fl.to_secs = num("time in seconds")?,
                        _ => return Err(unknown("flap")),
                    }
                }
                Section::Background => {
                    let b = plan
                        .background
                        .last_mut()
                        .ok_or_else(|| err(Some(lineno), "internal: no open section"))?;
                    match key {
                        "src" => b.src = index("node index")?,
                        "dst" => b.dst = index("node index")?,
                        "bytes" => b.bytes = index("byte count")? as u64,
                        "start" => b.start_secs = num("time in seconds")?,
                        "period" => b.period_secs = num("time in seconds")?,
                        "count" => b.count = index("count")? as u64,
                        _ => return Err(unknown("background")),
                    }
                }
                Section::Pause => {
                    let p = plan
                        .pauses
                        .last_mut()
                        .ok_or_else(|| err(Some(lineno), "internal: no open section"))?;
                    match key {
                        "node" => p.node = index("node index")?,
                        "at" => p.at_secs = num("time in seconds")?,
                        "duration" => p.duration_secs = num("time in seconds")?,
                        "slowdown" => p.slowdown = num("number")?,
                        _ => return Err(unknown("pause")),
                    }
                }
            }
        }
        Ok(plan)
    }
}

/// What kind of injected fault an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transmitted frame was lost to random per-frame loss.
    InjectedLoss,
    /// A frame was lost because a link-flap window was active.
    FlapDrop,
    /// A frame was deferred (or slowed) by a pause window.
    Paused,
    /// A background cross-traffic burst entered the network.
    BackgroundStart,
}

impl FaultKind {
    /// Short label for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::InjectedLoss => "injected_loss",
            FaultKind::FlapDrop => "flap_drop",
            FaultKind::Paused => "paused",
            FaultKind::BackgroundStart => "background_start",
        }
    }
}

/// One injected-fault occurrence, recorded by the engine for trace marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the occurrence.
    pub at: Time,
    /// Node the fault acted on (the sender for injected losses).
    pub node: NodeId,
    /// What happened.
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::ideal(8)
    }

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.validate(&cfg()).is_ok());
    }

    #[test]
    fn parses_full_scenario() {
        let src = "\
# robustness scenario
loss_prob = 0.01

[[degrade]]
node = 3
rate_factor = 0.5

[[flap]]
node = 2
from = 0.1   # seconds
to = 0.25

[[background]]
src = 0
dst = 5
bytes = 65536
start = 0.0
period = 0.01
count = 10

[[pause]]
node = 1
at = 0.05
duration = 0.02
";
        let p = FaultPlan::parse_toml(src).unwrap();
        assert_eq!(p.loss_prob, 0.01);
        assert_eq!(
            p.degrade,
            vec![LinkDegrade {
                node: 3,
                rate_factor: 0.5
            }]
        );
        assert_eq!(
            p.flaps,
            vec![LinkFlap {
                node: 2,
                from_secs: 0.1,
                to_secs: 0.25
            }]
        );
        assert_eq!(p.background[0].bytes, 65536);
        assert_eq!(p.background[0].count, 10);
        assert_eq!(p.pauses[0].slowdown, 0.0);
        assert!(!p.is_empty());
        assert!(p.validate(&cfg()).is_ok());
    }

    #[test]
    fn parse_errors_name_line_and_key() {
        let e = FaultPlan::parse_toml("loss_prob = banana").unwrap_err();
        assert_eq!(e.line, Some(1));
        assert!(e.message.contains("loss_prob"), "{e}");

        let e = FaultPlan::parse_toml("\n[[flop]]\n").unwrap_err();
        assert_eq!(e.line, Some(2));
        assert!(e.message.contains("flop"), "{e}");

        let e = FaultPlan::parse_toml("[[flap]]\nnoed = 3\n").unwrap_err();
        assert_eq!(e.line, Some(2));
        assert!(e.message.contains("noed"), "{e}");

        let e = FaultPlan::parse_toml("[flap]\n").unwrap_err();
        assert!(e.message.contains("[[flap]]"), "{e}");

        let e = FaultPlan::parse_toml("just some words\n").unwrap_err();
        assert!(e.message.contains("key = value"), "{e}");
    }

    #[test]
    fn validation_rejects_out_of_domain_values() {
        let c = cfg();
        let mut p = FaultPlan {
            loss_prob: 1.5,
            ..FaultPlan::default()
        };
        assert!(p.validate(&c).unwrap_err().message.contains("loss_prob"));
        p.loss_prob = 0.0;

        p.degrade = vec![LinkDegrade {
            node: 99,
            rate_factor: 0.5,
        }];
        let e = p.validate(&c).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        p.degrade = vec![LinkDegrade {
            node: 0,
            rate_factor: 0.0,
        }];
        assert!(p.validate(&c).is_err());
        p.degrade.clear();

        p.flaps = vec![LinkFlap {
            node: 0,
            from_secs: 0.3,
            to_secs: 0.2,
        }];
        assert!(p.validate(&c).is_err());
        p.flaps.clear();

        p.background = vec![Background {
            src: 1,
            dst: 1,
            bytes: 100,
            ..Background::default()
        }];
        assert!(p.validate(&c).unwrap_err().message.contains("differ"));
        p.background.clear();

        p.pauses = vec![Pause {
            node: 0,
            at_secs: 0.0,
            duration_secs: 0.1,
            slowdown: 0.5,
        }];
        assert!(p.validate(&c).unwrap_err().message.contains("slowdown"));
    }

    #[test]
    fn validation_reports_missing_required_keys() {
        let c = cfg();
        let p = FaultPlan::parse_toml("[[degrade]]\nnode = 1\n").unwrap();
        let e = p.validate(&c).unwrap_err();
        assert!(e.message.contains("rate_factor"), "{e}");
        let p = FaultPlan::parse_toml("[[flap]]\nfrom = 0.1\nto = 0.2\n").unwrap();
        let e = p.validate(&c).unwrap_err();
        assert!(e.message.contains("node"), "{e}");
    }
}
