//! The fault layer's pay-for-what-you-use contract: a [`FaultPlan`] with
//! zero loss probability and no events must leave a run **bitwise
//! identical** to having no plan at all — same completions (times,
//! retransmission counts, order), same statistics, same RNG consumption.
//! Any per-event cost or stray RNG draw added by an inert plan would break
//! the PR 3 acceptance baseline, so this is property-tested over random
//! workloads, seeds and presets.

use pevpm_netsim::{ClusterConfig, Completion, FaultPlan, NetStats, Network, Time};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run a random workload (derived from `wl_seed`) on `cfg` and return
/// everything observable: completions and final statistics.
fn run_workload(cfg: ClusterConfig, net_seed: u64, wl_seed: u64) -> (Vec<Completion>, NetStats) {
    let nodes = cfg.nodes;
    let mut net = Network::new(cfg, net_seed);
    let mut wl = SmallRng::seed_from_u64(wl_seed);
    let n_transfers = wl.gen_range(1..12usize);
    let mut at = Time::ZERO;
    for _ in 0..n_transfers {
        let src = wl.gen_range(0..nodes);
        let dst = wl.gen_range(0..nodes);
        let bytes = wl.gen_range(0..64 * 1024u64);
        at += pevpm_netsim::Dur::from_nanos(wl.gen_range(0..200_000));
        net.start_transfer(at, src, dst, bytes);
    }
    let done = net.run_to_completion();
    (done, *net.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `faults: None` vs `faults: Some(empty plan)` — bitwise identical.
    #[test]
    fn empty_plan_is_bitwise_identical_to_no_plan(
        net_seed in 0u64..1_000_000,
        wl_seed in 0u64..1_000_000,
        preset in 0usize..3,
        nodes in 2usize..32,
    ) {
        let base = match preset {
            0 => ClusterConfig::perseus(nodes),
            1 => ClusterConfig::ideal(nodes),
            _ => {
                // Tight buffers: the workload provokes emergent drops, so
                // the identity also covers the recovery/RNG path.
                let mut c = ClusterConfig::perseus(nodes);
                c.port_buffer_bytes = 4_000;
                c
            }
        };
        let mut with_plan = base.clone();
        with_plan.faults = Some(FaultPlan::default());
        prop_assert!(with_plan.faults.as_ref().is_some_and(|p| p.is_empty()));

        let (done_a, stats_a) = run_workload(base, net_seed, wl_seed);
        let (done_b, stats_b) = run_workload(with_plan, net_seed, wl_seed);
        prop_assert_eq!(done_a, done_b, "completions must be bitwise identical");
        prop_assert_eq!(stats_a, stats_b, "statistics must be bitwise identical");
        prop_assert_eq!(stats_b.faults_injected_losses, 0);
        prop_assert_eq!(stats_b.faults_background_transfers, 0);
    }

    /// With a positive loss probability every run is still reproducible
    /// from its seed (the injected faults ride the same RNG stream).
    #[test]
    fn faulted_runs_reproduce_bitwise_from_seed(
        net_seed in 0u64..1_000_000,
        wl_seed in 0u64..1_000_000,
        loss_millis in 1u32..200,
    ) {
        let mut cfg = ClusterConfig::perseus(8);
        cfg.faults = Some(FaultPlan {
            loss_prob: loss_millis as f64 / 1000.0,
            ..FaultPlan::default()
        });
        let a = run_workload(cfg.clone(), net_seed, wl_seed);
        let b = run_workload(cfg, net_seed, wl_seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }
}
