//! The Jacobi Iteration — the paper's §6 evaluation application
//! (regular-local communication class).
//!
//! Two forms are provided:
//!
//! - [`run_measured`] executes a *real* Jacobi program — actual `f32`
//!   stencil arithmetic on a 1-D row decomposition with halo exchange —
//!   on the simulated MPI world. Its virtual duration is the reproduction's
//!   "measured" execution time, and its numeric result is verifiable
//!   against a serial reference.
//! - [`model`] builds the equivalent PEVPM directive model (structurally
//!   identical to the paper's Figure 5 annotations; the annotation-derived
//!   variant is available via [`pevpm::parse_annotations`] on
//!   [`pevpm::JACOBI_FIG5`]).
//!
//! The communication structure is the paper's even/odd phased halo
//! exchange: even ranks send both halo rows first and then receive; odd
//! ranks receive first and then send.

use pevpm::model::build::*;
use pevpm::Model;
use pevpm_mpisim::{Rank, ReduceOp, RunReport, SimError, World, WorldConfig};
use std::sync::Arc;

use parking_lot::Mutex;

/// Configuration of a Jacobi run / model.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Grid is `xsize × xsize` (the paper uses 256 so the problem fits in
    /// cache at every process count).
    pub xsize: usize,
    /// Iterations to run (the paper's evaluation uses 1000).
    pub iterations: usize,
    /// Measured serial compute time for one whole-grid iteration on one
    /// processor; each rank's per-iteration compute time is this over
    /// `numprocs`. The paper's Figure 5 constant is `3.24/numprocs` with
    /// no unit; we interpret it as **milliseconds** (3.24 ms/iteration ≈
    /// 80 Mflop/s on the 500 MHz P-III, and consistent with the paper's
    /// 11 h 15 m total processor time over 100 000-iteration runs),
    /// since 3.24 s/iteration would imply an absurd 80 flop/s.
    pub serial_secs: f64,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            xsize: 256,
            iterations: 1000,
            serial_secs: 3.24e-3,
        }
    }
}

impl JacobiConfig {
    /// Halo-row message size in bytes (`xsize * sizeof(float)`).
    pub fn halo_bytes(&self) -> u64 {
        (self.xsize * 4) as u64
    }
}

/// Result of a measured Jacobi execution.
#[derive(Debug, Clone)]
pub struct JacobiRun {
    /// The world's run report (virtual duration, network stats, …).
    pub report: RunReport,
    /// Total virtual execution time in seconds.
    pub time: f64,
    /// Sum over the final grid (identical across process counts for the
    /// same `xsize`/`iterations` — the correctness check).
    pub checksum: f64,
}

const TAG_UP: u64 = 1; // toward rank-1
const TAG_DOWN: u64 = 2; // toward rank+1

fn encode_f32s(row: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 4);
    for v in row {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len().is_multiple_of(4), "halo payload not whole f32s");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// The initial condition: top boundary row = 1, all else 0 (a standard
/// heat-plate setup; any fixed boundary works for verification).
fn initial_row(global_row: usize, xsize: usize) -> Vec<f32> {
    if global_row == 0 {
        vec![1.0; xsize]
    } else {
        vec![0.0; xsize]
    }
}

/// Serial reference implementation, used by tests and for checksums.
pub fn serial_reference(xsize: usize, iterations: usize) -> f64 {
    let mut grid: Vec<Vec<f32>> = (0..xsize).map(|r| initial_row(r, xsize)).collect();
    let mut next = grid.clone();
    for _ in 0..iterations {
        for j in 1..xsize - 1 {
            for k in 1..xsize - 1 {
                next[j][k] =
                    0.25 * (grid[j][k - 1] + grid[j - 1][k] + grid[j][k + 1] + grid[j + 1][k]);
            }
        }
        std::mem::swap(&mut grid, &mut next);
    }
    grid.iter().flatten().map(|&v| v as f64).sum()
}

/// Execute the real Jacobi program on a simulated MPI world.
///
/// `world.nranks()` must divide `cfg.xsize`.
pub fn run_measured(world: WorldConfig, cfg: &JacobiConfig) -> Result<JacobiRun, SimError> {
    let nranks = world.nranks();
    assert!(nranks >= 1, "need at least one rank");
    assert!(
        cfg.xsize.is_multiple_of(nranks),
        "xsize {} must be divisible by nranks {nranks}",
        cfg.xsize
    );
    let cfg = cfg.clone();
    let checksum = Arc::new(Mutex::new(0.0f64));
    let checksum2 = checksum.clone();

    let report = World::run(world, move |rank| {
        run_rank(rank, &cfg, &checksum2);
    })?;

    let time = report.virtual_time.as_secs_f64();
    let checksum = *checksum.lock();
    Ok(JacobiRun {
        report,
        time,
        checksum,
    })
}

fn run_rank(rank: &mut Rank, cfg: &JacobiConfig, checksum: &Mutex<f64>) {
    let (r, n, x) = (rank.rank(), rank.nranks(), cfg.xsize);
    let rows = x / n;
    let first_global = r * rows;

    // Local slab with two ghost rows: indices 0 and rows+1.
    let mut grid: Vec<Vec<f32>> = std::iter::once(vec![0.0; x])
        .chain((0..rows).map(|j| initial_row(first_global + j, x)))
        .chain(std::iter::once(vec![0.0; x]))
        .collect();
    let mut next = grid.clone();

    let per_iter = cfg.serial_secs / n as f64;
    let even = r % 2 == 0;

    for _ in 0..cfg.iterations {
        // Halo exchange with the paper's even/odd phasing.
        if even {
            if r != 0 {
                rank.send(r - 1, TAG_UP, encode_f32s(&grid[1]));
            }
            if r != n - 1 {
                rank.send(r + 1, TAG_DOWN, encode_f32s(&grid[rows]));
                let (_, p) = rank.recv(r + 1, TAG_UP);
                grid[rows + 1] = decode_f32s(&p);
            }
            if r != 0 {
                let (_, p) = rank.recv(r - 1, TAG_DOWN);
                grid[0] = decode_f32s(&p);
            }
        } else {
            if r != n - 1 {
                let (_, p) = rank.recv(r + 1, TAG_UP);
                grid[rows + 1] = decode_f32s(&p);
            }
            let (_, p) = rank.recv(r - 1, TAG_DOWN);
            grid[0] = decode_f32s(&p);
            rank.send(r - 1, TAG_UP, encode_f32s(&grid[1]));
            if r != n - 1 {
                rank.send(r + 1, TAG_DOWN, encode_f32s(&grid[rows]));
            }
        }

        // Stencil update on interior points (global boundary rows/cols are
        // fixed).
        for j in 1..=rows {
            let gj = first_global + j - 1;
            if gj == 0 || gj == x - 1 {
                next[j].copy_from_slice(&grid[j]);
                continue;
            }
            for k in 1..x - 1 {
                next[j][k] =
                    0.25 * (grid[j][k - 1] + grid[j - 1][k] + grid[j][k + 1] + grid[j + 1][k]);
            }
            next[j][0] = grid[j][0];
            next[j][x - 1] = grid[j][x - 1];
        }
        for j in 1..=rows {
            std::mem::swap(&mut grid[j], &mut next[j]);
        }

        // Charge the calibrated serial compute time for this iteration.
        rank.compute_secs(per_iter);
    }

    // Verification: global checksum to rank 0.
    let local: f64 = grid[1..=rows].iter().flatten().map(|&v| v as f64).sum();
    if let Some(total) = rank.reduce_f64s(0, &[local], ReduceOp::Sum) {
        *checksum.lock() = total[0];
    }
}

/// Execute an *overlap-optimised* Jacobi variant: nonblocking halo
/// receives and sends are posted first, the interior rows (which do not
/// need halo data) are computed while the messages fly, and only the
/// boundary rows wait for the halos. The PEVPM counterpart is
/// [`model_overlap`]; comparing the two models *before writing this code*
/// is exactly the design-stage question §1 motivates PEVPM with.
pub fn run_measured_overlap(world: WorldConfig, cfg: &JacobiConfig) -> Result<JacobiRun, SimError> {
    let nranks = world.nranks();
    assert!(
        cfg.xsize.is_multiple_of(nranks),
        "xsize must divide by nranks"
    );
    let cfg = cfg.clone();
    let checksum = Arc::new(Mutex::new(0.0f64));
    let checksum2 = checksum.clone();

    let report = World::run(world, move |rank| {
        run_rank_overlap(rank, &cfg, &checksum2);
    })?;

    let time = report.virtual_time.as_secs_f64();
    let checksum = *checksum.lock();
    Ok(JacobiRun {
        report,
        time,
        checksum,
    })
}

fn run_rank_overlap(rank: &mut Rank, cfg: &JacobiConfig, checksum: &Mutex<f64>) {
    let (r, n, x) = (rank.rank(), rank.nranks(), cfg.xsize);
    let rows = x / n;
    let first_global = r * rows;

    let mut grid: Vec<Vec<f32>> = std::iter::once(vec![0.0; x])
        .chain((0..rows).map(|j| initial_row(first_global + j, x)))
        .chain(std::iter::once(vec![0.0; x]))
        .collect();
    let mut next = grid.clone();

    // Split the calibrated compute time: interior rows overlap the halo
    // exchange; the two boundary rows are computed after the waits.
    let per_iter = cfg.serial_secs / n as f64;
    let boundary_frac = if rows > 0 {
        (2.0 / rows as f64).min(1.0)
    } else {
        1.0
    };
    let interior_secs = per_iter * (1.0 - boundary_frac);
    let boundary_secs = per_iter * boundary_frac;

    let stencil_row = |grid: &Vec<Vec<f32>>, next: &mut Vec<Vec<f32>>, j: usize| {
        let gj = first_global + j - 1;
        if gj == 0 || gj == x - 1 {
            next[j].copy_from_slice(&grid[j]);
            return;
        }
        for k in 1..x - 1 {
            next[j][k] = 0.25 * (grid[j][k - 1] + grid[j - 1][k] + grid[j][k + 1] + grid[j + 1][k]);
        }
        next[j][0] = grid[j][0];
        next[j][x - 1] = grid[j][x - 1];
    };

    for _ in 0..cfg.iterations {
        // Post all nonblocking halo traffic up front.
        let rx_up = (r != 0).then(|| rank.irecv(r - 1, TAG_DOWN));
        let rx_down = (r != n - 1).then(|| rank.irecv(r + 1, TAG_UP));
        let tx_up = (r != 0).then(|| rank.isend(r - 1, TAG_UP, encode_f32s(&grid[1])));
        let tx_down = (r != n - 1).then(|| rank.isend(r + 1, TAG_DOWN, encode_f32s(&grid[rows])));

        // Interior rows overlap the transfers.
        for j in 2..rows {
            stencil_row(&grid, &mut next, j);
        }
        rank.compute_secs(interior_secs);

        // Complete the halos, then the boundary rows.
        if let Some(req) = rx_up {
            let (_, p) = rank.wait(req).expect("halo receive");
            grid[0] = decode_f32s(&p);
        }
        if let Some(req) = rx_down {
            let (_, p) = rank.wait(req).expect("halo receive");
            grid[rows + 1] = decode_f32s(&p);
        }
        stencil_row(&grid, &mut next, 1);
        if rows >= 2 {
            stencil_row(&grid, &mut next, rows);
        }
        rank.compute_secs(boundary_secs);
        if let Some(req) = tx_up {
            rank.wait(req);
        }
        if let Some(req) = tx_down {
            rank.wait(req);
        }

        for j in 1..=rows {
            std::mem::swap(&mut grid[j], &mut next[j]);
        }
    }

    let local: f64 = grid[1..=rows].iter().flatten().map(|&v| v as f64).sum();
    if let Some(total) = rank.reduce_f64s(0, &[local], ReduceOp::Sum) {
        *checksum.lock() = total[0];
    }
}

/// The PEVPM model of the overlap-optimised variant ([`run_measured_overlap`]):
/// nonblocking sends, nonblocking halo receives waited *after* the interior
/// compute.
pub fn model_overlap(cfg: &JacobiConfig) -> Model {
    use pevpm::model::Stmt;
    let halo = "xsize*sizeof(float)";
    let rows_per_proc = cfg.xsize; // per proc: xsize/numprocs, symbolic below
    let _ = rows_per_proc;
    Model::new()
        .with_param("xsize", cfg.xsize as f64)
        .with_param("iterations", cfg.iterations as f64)
        .with_param("tserial", cfg.serial_secs)
        .with_stmt(looped(
            "iterations",
            vec![
                // Post receives (handles) and sends.
                runon(
                    "procnum != 0",
                    vec![Stmt::Message {
                        kind: pevpm::MsgKind::Irecv,
                        size: e(halo),
                        from: e("procnum-1"),
                        to: e("procnum"),
                        handle: Some("up".into()),
                        label: Some("halo-irecv-up".into()),
                    }],
                ),
                runon(
                    "procnum != numprocs-1",
                    vec![Stmt::Message {
                        kind: pevpm::MsgKind::Irecv,
                        size: e(halo),
                        from: e("procnum+1"),
                        to: e("procnum"),
                        handle: Some("down".into()),
                        label: Some("halo-irecv-down".into()),
                    }],
                ),
                runon(
                    "procnum != 0",
                    vec![labelled(
                        isend(halo, "procnum", "procnum-1"),
                        "halo-isend-up",
                    )],
                ),
                runon(
                    "procnum != numprocs-1",
                    vec![labelled(
                        isend(halo, "procnum", "procnum+1"),
                        "halo-isend-down",
                    )],
                ),
                // Interior compute overlaps the transfers.
                labelled(
                    serial("tserial/numprocs * (1 - min(2*numprocs/(xsize), 1))"),
                    "stencil-interior",
                ),
                // Boundary rows need the halos.
                runon("procnum != 0", vec![labelled(wait("up"), "halo-wait-up")]),
                runon(
                    "procnum != numprocs-1",
                    vec![labelled(wait("down"), "halo-wait-down")],
                ),
                labelled(
                    serial("tserial/numprocs * min(2*numprocs/(xsize), 1)"),
                    "stencil-boundary",
                ),
            ],
        ))
}

/// Build the parametric PEVPM model of the Jacobi program — structurally
/// the paper's Figure 5 annotations, with `xsize`, `iterations` and the
/// serial constant (`tserial`) kept symbolic.
pub fn model(cfg: &JacobiConfig) -> Model {
    let halo = "xsize*sizeof(float)";
    Model::new()
        .with_param("xsize", cfg.xsize as f64)
        .with_param("iterations", cfg.iterations as f64)
        .with_param("tserial", cfg.serial_secs)
        .with_stmt(looped(
            "iterations",
            vec![
                runon2(
                    "procnum % 2 == 0",
                    vec![
                        runon(
                            "procnum != 0",
                            vec![labelled(send(halo, "procnum", "procnum-1"), "halo-send-up")],
                        ),
                        runon(
                            "procnum != numprocs-1",
                            vec![
                                labelled(send(halo, "procnum", "procnum+1"), "halo-send-down"),
                                labelled(recv(halo, "procnum+1", "procnum"), "halo-recv-down"),
                            ],
                        ),
                        runon(
                            "procnum != 0",
                            vec![labelled(recv(halo, "procnum-1", "procnum"), "halo-recv-up")],
                        ),
                    ],
                    "procnum % 2 != 0",
                    vec![
                        runon(
                            "procnum != numprocs-1",
                            vec![labelled(
                                recv(halo, "procnum+1", "procnum"),
                                "halo-recv-down",
                            )],
                        ),
                        labelled(recv(halo, "procnum-1", "procnum"), "halo-recv-up"),
                        labelled(send(halo, "procnum", "procnum-1"), "halo-send-up"),
                        runon(
                            "procnum != numprocs-1",
                            vec![labelled(
                                send(halo, "procnum", "procnum+1"),
                                "halo-send-down",
                            )],
                        ),
                    ],
                ),
                labelled(serial("tserial/numprocs"), "stencil-compute"),
            ],
        ))
}

/// An ensemble of independent Jacobi regions: `numprocs` ranks split into
/// contiguous blocks of `region_size`, each block running the §6 halo
/// exchange among itself only (halos never cross a region boundary).
///
/// This is the parameter-sweep shape clusters actually run — many
/// same-sized replicas of one stencil at different inputs — and the
/// canonical *decomposable* workload for the DAG scheduler: the
/// dependency analysis condenses it into `numprocs / region_size`
/// mutually independent components, so `--eval-threads` can evaluate the
/// regions concurrently (bitwise identically at any worker count),
/// whereas the plain [`model`] is one strongly-connected halo chain.
///
/// `region_size` must divide the process count and be ≥ 2 (a region of
/// one rank has no exchange partner).
pub fn ensemble_model(cfg: &JacobiConfig, region_size: usize) -> Model {
    assert!(region_size >= 2, "a Jacobi region needs at least 2 ranks");
    let halo = "xsize*sizeof(float)";
    // Region-local boundary guards: rank r is its region's top row when
    // `r % rsize == 0` and bottom row when `r % rsize == rsize-1`. Each
    // region is exactly [`model`] on `rsize` ranks, so the per-rank
    // stencil share is `tserial/rsize`.
    let not_top = "procnum % rsize != 0";
    let not_bottom = "procnum % rsize != rsize-1";
    Model::new()
        .with_param("xsize", cfg.xsize as f64)
        .with_param("iterations", cfg.iterations as f64)
        .with_param("tserial", cfg.serial_secs)
        .with_param("rsize", region_size as f64)
        .with_stmt(looped(
            "iterations",
            vec![
                runon2(
                    "procnum % 2 == 0",
                    vec![
                        runon(
                            not_top,
                            vec![labelled(send(halo, "procnum", "procnum-1"), "halo-send-up")],
                        ),
                        runon(
                            not_bottom,
                            vec![
                                labelled(send(halo, "procnum", "procnum+1"), "halo-send-down"),
                                labelled(recv(halo, "procnum+1", "procnum"), "halo-recv-down"),
                            ],
                        ),
                        runon(
                            not_top,
                            vec![labelled(recv(halo, "procnum-1", "procnum"), "halo-recv-up")],
                        ),
                    ],
                    "procnum % 2 != 0",
                    vec![
                        runon(
                            not_bottom,
                            vec![labelled(
                                recv(halo, "procnum+1", "procnum"),
                                "halo-recv-down",
                            )],
                        ),
                        runon(
                            not_top,
                            vec![
                                labelled(recv(halo, "procnum-1", "procnum"), "halo-recv-up"),
                                labelled(send(halo, "procnum", "procnum-1"), "halo-send-up"),
                            ],
                        ),
                        runon(
                            not_bottom,
                            vec![labelled(
                                send(halo, "procnum", "procnum+1"),
                                "halo-send-down",
                            )],
                        ),
                    ],
                ),
                labelled(serial("tserial/rsize"), "stencil-compute"),
            ],
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm::timing::TimingModel;
    use pevpm::vm::{evaluate, EvalConfig};

    #[test]
    fn serial_reference_conserves_boundary() {
        // The top boundary stays 1.0; heat diffuses downward, so the
        // checksum grows with iterations.
        let c0 = serial_reference(16, 0);
        let c10 = serial_reference(16, 10);
        assert_eq!(c0, 16.0);
        assert!(c10 > c0);
    }

    #[test]
    fn measured_matches_serial_reference() {
        let cfg = JacobiConfig {
            xsize: 16,
            iterations: 8,
            serial_secs: 0.001,
        };
        let reference = serial_reference(16, 8);
        for nodes in [1usize, 2, 4] {
            let run = run_measured(WorldConfig::ideal(nodes, 1), &cfg).unwrap();
            assert!(
                (run.checksum - reference).abs() < 1e-6,
                "{nodes} ranks: checksum {} vs reference {reference}",
                run.checksum
            );
        }
    }

    #[test]
    fn measured_time_includes_compute_and_comm() {
        let cfg = JacobiConfig {
            xsize: 16,
            iterations: 4,
            serial_secs: 0.1,
        };
        let run = run_measured(WorldConfig::ideal(2, 1), &cfg).unwrap();
        // At least the per-rank compute: 4 iterations × 0.1/2 s.
        assert!(run.time >= 0.2, "time {}", run.time);
        // Messages: 4 iterations × 2 (one each way across the single cut).
        assert_eq!(run.report.messages as usize, 4 * 2 + 1 /* reduce */);
    }

    #[test]
    fn model_matches_fig5_structure() {
        let cfg = JacobiConfig::default();
        let m = model(&cfg);
        assert!(
            m.check_bindings(&Default::default()).is_ok(),
            "unbound model params"
        );
        // Evaluate with an analytic timing model; must not deadlock for
        // various process counts.
        for n in [1usize, 2, 4, 8] {
            let p = evaluate(
                &m,
                &EvalConfig::new(n).with_param("iterations", 3.0),
                &TimingModel::hockney(100e-6, 12.5e6),
            )
            .unwrap();
            assert!(p.makespan > 0.0);
        }
    }

    #[test]
    fn ensemble_model_decomposes_into_independent_regions() {
        let cfg = JacobiConfig {
            xsize: 64,
            iterations: 4,
            serial_secs: 1e-4,
        };
        let m = ensemble_model(&cfg, 2);
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let eval_cfg = EvalConfig::new(8).with_seed(3);
        let plan = pevpm::dag::plan(&m, &eval_cfg).expect("analysis");
        assert_eq!(plan.components, 8 / 2, "one component per region");
        assert!(plan.fallback.is_none(), "{:?}", plan.fallback);

        // The decomposed evaluation is thread-invariant, and every region
        // runs the same exchange so all ranks finish alike.
        let serial = evaluate(&m, &eval_cfg, &timing).unwrap();
        for eval_threads in [1usize, 2, 8] {
            let c = eval_cfg.clone().with_eval_threads(eval_threads);
            let p = evaluate(&m, &c, &timing).unwrap();
            assert_eq!(
                p.makespan.to_bits(),
                evaluate(&m, &eval_cfg.clone().with_eval_threads(1), &timing)
                    .unwrap()
                    .makespan
                    .to_bits(),
                "eval-threads={eval_threads} diverged"
            );
        }
        assert!(serial.makespan > 0.0);
        // Same per-iteration message count as four independent 2-rank
        // Jacobis: 2 messages per cut per iteration, one cut per region.
        assert_eq!(serial.messages, 4 * 2 * 4);
    }

    #[test]
    fn model_speedup_behaviour_is_sane() {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 10,
            serial_secs: 3.24,
        };
        let m = model(&cfg);
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let t1 = evaluate(&m, &EvalConfig::new(1), &timing).unwrap().makespan;
        let t4 = evaluate(&m, &EvalConfig::new(4), &timing).unwrap().makespan;
        let speedup = t1 / t4;
        assert!(
            speedup > 2.0 && speedup < 4.0,
            "4-proc speedup should be sublinear but real: {speedup}"
        );
    }

    #[test]
    fn overlap_variant_is_numerically_identical() {
        let cfg = JacobiConfig {
            xsize: 16,
            iterations: 8,
            serial_secs: 0.001,
        };
        let reference = serial_reference(16, 8);
        for nodes in [1usize, 2, 4] {
            let run = run_measured_overlap(WorldConfig::ideal(nodes, 1), &cfg).unwrap();
            assert!(
                (run.checksum - reference).abs() < 1e-6,
                "{nodes} ranks: {} vs {reference}",
                run.checksum
            );
        }
    }

    #[test]
    fn overlap_variant_is_faster_when_comm_bound() {
        // Small compute, real network: overlap must beat the phased code.
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 40,
            serial_secs: 3.24e-3,
        };
        let phased = run_measured(WorldConfig::perseus(16, 1, 3), &cfg)
            .unwrap()
            .time;
        let overlap = run_measured_overlap(WorldConfig::perseus(16, 1, 3), &cfg)
            .unwrap()
            .time;
        assert!(
            overlap < phased,
            "overlap {overlap} should beat phased {phased}"
        );
    }

    #[test]
    fn overlap_model_predicts_the_improvement() {
        // The design-stage question: does PEVPM predict the same ranking
        // and roughly the same gain as actually implementing both codes?
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 40,
            serial_secs: 3.24e-3,
        };
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let phased = evaluate(&model(&cfg), &EvalConfig::new(16), &timing)
            .unwrap()
            .makespan;
        let overlap = evaluate(&model_overlap(&cfg), &EvalConfig::new(16), &timing)
            .unwrap()
            .makespan;
        assert!(
            overlap < phased,
            "model should predict overlap wins: {overlap} vs {phased}"
        );
    }

    #[test]
    fn fig5_annotations_agree_with_programmatic_model() {
        // The paper-listing model and the programmatic model must predict
        // the same makespan under a deterministic timing model, except for
        // the paper's hard-coded unguarded interior sends (identical for
        // even interior ranks).
        let fig5 = pevpm::parse_annotations(pevpm::JACOBI_FIG5).unwrap();
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let p_fig5 = evaluate(
            &fig5,
            &EvalConfig::new(4)
                .with_param("xsize", 256.0)
                .with_param("iterations", 5.0),
            &timing,
        )
        .unwrap();
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 5,
            serial_secs: 3.24,
        };
        let p_prog = evaluate(&model(&cfg), &EvalConfig::new(4), &timing).unwrap();
        let rel = (p_fig5.makespan - p_prog.makespan).abs() / p_prog.makespan;
        assert!(
            rel < 0.02,
            "fig5 {} vs programmatic {}",
            p_fig5.makespan,
            p_prog.makespan
        );
    }
}
