//! Distributed 1-D FFT — the paper's regular-global communication class
//! (§6 mentions a Fast Fourier Transform validated in refs [9, 10]).
//!
//! The implementation is the classic four-step (Bailey) factorisation of an
//! N = N1·N2 transform:
//!
//! 1. for each n1: length-N2 FFT over n2 of `x[n1 + N1·n2]`;
//! 2. twiddle multiply by `ω_N^(n1·k2)`;
//! 3. **global transpose** (personalised all-to-all — the regular-global
//!    communication phase);
//! 4. for each k2: length-N1 FFT over n1; output `X[N2·k1 + k2]`.
//!
//! Rank p owns a block of `n1` rows before the transpose and a block of
//! `k2` columns after. Real `f64` complex arithmetic throughout, verified
//! against a naive O(N²) DFT in the tests. Virtual compute time is charged
//! per butterfly stage via a calibrated flop rate.

use parking_lot::Mutex;
use pevpm::model::build::*;
use pevpm::model::CollOp;
use pevpm::Model;
use pevpm_mpisim::{decode_f64s, encode_f64s, RunReport, SimError, World, WorldConfig};
use std::sync::Arc;

/// Configuration of the distributed FFT.
#[derive(Debug, Clone)]
pub struct FftConfig {
    /// Row dimension N1 (power of two, divisible by the rank count).
    pub n1: usize,
    /// Column dimension N2 (power of two, divisible by the rank count).
    pub n2: usize,
    /// Sustained flop rate used to charge virtual compute time
    /// (flops/sec); ~50 Mflop/s is P-III-era for FFT kernels.
    pub flops_per_sec: f64,
    /// Number of back-to-back transforms (iterations) to run.
    pub iterations: usize,
}

impl Default for FftConfig {
    fn default() -> Self {
        FftConfig {
            n1: 64,
            n2: 64,
            flops_per_sec: 50e6,
            iterations: 1,
        }
    }
}

impl FftConfig {
    /// Total transform length.
    pub fn n(&self) -> usize {
        self.n1 * self.n2
    }

    /// Bytes exchanged with each peer in the transpose (complex f64).
    pub fn alltoall_block_bytes(&self, nranks: usize) -> u64 {
        ((self.n() / nranks / nranks) * 16) as u64
    }

    /// Flops for one rank's share of one transform (both local FFT phases
    /// + twiddles), using 5·L·log2(L) per length-L FFT.
    pub fn flops_per_rank(&self, nranks: usize) -> f64 {
        let rows1 = self.n1 / nranks; // rows FFT'd in step 1
        let rows2 = self.n2 / nranks; // columns FFT'd in step 4
        let f1 = rows1 as f64 * 5.0 * self.n2 as f64 * (self.n2 as f64).log2();
        let f2 = rows2 as f64 * 5.0 * self.n1 as f64 * (self.n1 as f64).log2();
        let tw = 6.0 * (rows1 * self.n2) as f64;
        f1 + f2 + tw
    }
}

/// Result of a measured FFT execution.
#[derive(Debug, Clone)]
pub struct FftRun {
    /// World run report.
    pub report: RunReport,
    /// Total virtual time in seconds.
    pub time: f64,
    /// The full transform output gathered at rank 0 (interleaved re/im),
    /// in natural `X[k]` order. Empty for multi-iteration benchmark runs.
    pub output: Vec<f64>,
}

/// In-place iterative radix-2 Cooley–Tukey FFT over interleaved complex
/// `(re, im)` pairs.
pub fn fft_inplace(data: &mut [(f64, f64)]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit reversal.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for j in 0..len / 2 {
                let (ar, ai) = data[i + j];
                let (br, bi) = data[i + j + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[i + j] = (ar + tr, ai + ti);
                data[i + j + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive O(N²) DFT reference for verification.
pub fn dft_reference(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &(re, im)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                acc.0 += re * c - im * s;
                acc.1 += re * s + im * c;
            }
            acc
        })
        .collect()
}

/// Deterministic synthetic input signal.
pub fn test_signal(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            (
                (x * 0.37).sin() + 0.5 * (x * 0.11).cos(),
                0.25 * (x * 0.23).sin(),
            )
        })
        .collect()
}

fn pack(rows: &[Vec<(f64, f64)>], cols: std::ops::Range<usize>) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows.len() * cols.len() * 2);
    for row in rows {
        for c in cols.clone() {
            out.push(row[c].0);
            out.push(row[c].1);
        }
    }
    out
}

/// Run the real distributed FFT on a simulated MPI world. If
/// `cfg.iterations == 1` the result is gathered and returned in natural
/// order for verification.
pub fn run_measured(world: WorldConfig, cfg: &FftConfig) -> Result<FftRun, SimError> {
    let p = world.nranks();
    assert!(cfg.n1.is_power_of_two() && cfg.n2.is_power_of_two());
    assert!(
        cfg.n1.is_multiple_of(p) && cfg.n2.is_multiple_of(p),
        "rank count must divide N1 and N2"
    );
    let cfg = cfg.clone();
    let gathered: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let gathered2 = gathered.clone();

    let report = World::run(world, move |rank| {
        let me = rank.rank();
        let nr = rank.nranks();
        let (n1, n2) = (cfg.n1, cfg.n2);
        let n = n1 * n2;
        let rows1 = n1 / nr;
        let rows2 = n2 / nr;
        let compute_secs = cfg.flops_per_rank(nr) / cfg.flops_per_sec;

        for _iter in 0..cfg.iterations {
            // Step 0: rank `me` owns n1 rows [me*rows1, (me+1)*rows1);
            // row n1idx holds x[n1idx + N1*n2idx] for all n2idx.
            let sig = test_signal(n);
            let mut rows: Vec<Vec<(f64, f64)>> = (0..rows1)
                .map(|r| {
                    let n1idx = me * rows1 + r;
                    (0..n2).map(|n2idx| sig[n1idx + n1 * n2idx]).collect()
                })
                .collect();

            // Step 1: length-N2 FFT of each row.
            for row in rows.iter_mut() {
                fft_inplace(row);
            }
            // Step 2: twiddle by ω_N^(n1·k2).
            for (r, row) in rows.iter_mut().enumerate() {
                let n1idx = (me * rows1 + r) as f64;
                for (k2, v) in row.iter_mut().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * n1idx * k2 as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    *v = (v.0 * c - v.1 * s, v.0 * s + v.1 * c);
                }
            }
            rank.compute_secs(compute_secs * 0.5);

            // Step 3: global transpose. Peer q gets our rows' entries for
            // its k2 block [q*rows2, (q+1)*rows2).
            let chunks: Vec<pevpm_mpisim::Bytes> = (0..nr)
                .map(|q| encode_f64s(&pack(&rows, q * rows2..(q + 1) * rows2)))
                .collect();
            let got = rank.alltoall(chunks);

            // Reassemble: now rank owns k2 block; columns[k2local][n1idx].
            let mut cols: Vec<Vec<(f64, f64)>> = vec![vec![(0.0, 0.0); n1]; rows2];
            for (q, blob) in got.iter().enumerate() {
                let vals = decode_f64s(blob);
                // Block layout: rows1 rows × rows2 cols, interleaved.
                for r in 0..rows1 {
                    for (c, col) in cols.iter_mut().enumerate() {
                        let idx = (r * rows2 + c) * 2;
                        col[q * rows1 + r] = (vals[idx], vals[idx + 1]);
                    }
                }
            }

            // Step 4: length-N1 FFT along n1 for each k2.
            for col in cols.iter_mut() {
                fft_inplace(col);
            }
            rank.compute_secs(compute_secs * 0.5);

            // Verification gather (single iteration only): X[N2·k1 + k2].
            if cfg.iterations == 1 {
                let flat = pack(&cols, 0..n1);
                let all = rank.gather(0, encode_f64s(&flat));
                if let Some(parts) = all {
                    let mut output = vec![0.0f64; 2 * n];
                    for (q, blob) in parts.iter().enumerate() {
                        let vals = decode_f64s(blob);
                        for c in 0..rows2 {
                            let k2 = q * rows2 + c;
                            for k1 in 0..n1 {
                                let idx = (c * n1 + k1) * 2;
                                let k = n2 * k1 + k2;
                                output[2 * k] = vals[idx];
                                output[2 * k + 1] = vals[idx + 1];
                            }
                        }
                    }
                    *gathered2.lock() = output;
                }
            }
        }
    })?;

    let time = report.virtual_time.as_secs_f64();
    let output = std::mem::take(&mut *gathered.lock());
    Ok(FftRun {
        report,
        time,
        output,
    })
}

/// The PEVPM model of the distributed FFT: two serial butterfly phases
/// around an all-to-all transpose, per iteration.
pub fn model(cfg: &FftConfig) -> Model {
    Model::new()
        .with_param("n1", cfg.n1 as f64)
        .with_param("n2", cfg.n2 as f64)
        .with_param("iterations", cfg.iterations as f64)
        .with_param("flops", cfg.flops_per_sec)
        .with_stmt(looped(
            "iterations",
            vec![
                labelled(
                    serial(
                        "(n1/numprocs*5*n2*log2(n2) + 6*n1*n2/numprocs) / flops / 2 \
                         + (n2/numprocs*5*n1*log2(n1)) / flops / 2",
                    ),
                    "fft-phase-1",
                ),
                labelled(
                    collective(CollOp::Alltoall, "n1*n2*16/(numprocs*numprocs)"),
                    "fft-transpose",
                ),
                labelled(
                    serial(
                        "(n1/numprocs*5*n2*log2(n2) + 6*n1*n2/numprocs) / flops / 2 \
                         + (n2/numprocs*5*n1*log2(n1)) / flops / 2",
                    ),
                    "fft-phase-2",
                ),
            ],
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fft_matches_dft() {
        let input = test_signal(64);
        let mut fast = input.clone();
        fft_inplace(&mut fast);
        let slow = dft_reference(&input);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f.0 - s.0).abs() < 1e-9 && (f.1 - s.1).abs() < 1e-9);
        }
    }

    #[test]
    fn distributed_fft_matches_dft() {
        let cfg = FftConfig {
            n1: 8,
            n2: 8,
            flops_per_sec: 50e6,
            iterations: 1,
        };
        let input = test_signal(64);
        let reference = dft_reference(&input);
        for p in [1usize, 2, 4] {
            let run = run_measured(WorldConfig::ideal(p, 1), &cfg).unwrap();
            assert_eq!(run.output.len(), 128);
            for (k, r) in reference.iter().enumerate() {
                let (re, im) = (run.output[2 * k], run.output[2 * k + 1]);
                assert!(
                    (re - r.0).abs() < 1e-8 && (im - r.1).abs() < 1e-8,
                    "p={p} k={k}: ({re},{im}) vs ({},{})",
                    r.0,
                    r.1
                );
            }
        }
    }

    #[test]
    fn measured_time_scales_down_with_ranks() {
        let cfg = FftConfig {
            n1: 64,
            n2: 64,
            flops_per_sec: 50e6,
            iterations: 4,
        };
        let t1 = run_measured(WorldConfig::ideal(1, 1), &cfg).unwrap().time;
        let t4 = run_measured(WorldConfig::ideal(4, 1), &cfg).unwrap().time;
        assert!(t4 < t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn model_parameters_are_bound() {
        let m = model(&FftConfig::default());
        assert!(
            m.check_bindings(&Default::default()).is_ok(),
            "unbound model params"
        );
    }

    #[test]
    fn model_compute_matches_measured_compute() {
        // With an all-zero-cost network both forms should agree on compute.
        let cfg = FftConfig {
            n1: 32,
            n2: 32,
            flops_per_sec: 50e6,
            iterations: 2,
        };
        let m = model(&cfg);
        let mut table = pevpm_dist::DistTable::new();
        table.insert(
            pevpm_dist::DistKey {
                op: pevpm_dist::Op::Alltoall,
                size: 1,
                contention: 1,
            },
            pevpm_dist::CommDist::Point(0.0),
        );
        let timing = pevpm::TimingModel::distributions(table);
        let pred = pevpm::evaluate(&m, &pevpm::EvalConfig::new(4), &timing).unwrap();
        let expect = 2.0 * cfg.flops_per_rank(4) / cfg.flops_per_sec;
        assert!(
            (pred.makespan - expect).abs() / expect < 0.05,
            "pred {} vs expect {expect}",
            pred.makespan
        );
    }
}
