//! Bag-of-tasks / task farm — the paper's irregular communication class
//! (§6 mentions a "bag of tasks (or task farm)" validated in refs [9, 10]).
//!
//! The **measured** program is a genuine dynamic farm: a master (rank 0)
//! hands tasks to whichever worker asks next (wildcard receive), so the
//! schedule is data-dependent and non-deterministic in structure — exactly
//! the behaviour class PEVPM's decision-point machinery exists for.
//!
//! The **model** uses PEVPM wildcard receives (`from = -1`) at the master
//! and a static round-robin reply target — the standard modelling
//! approximation for a dynamic farm (documented in DESIGN.md): with i.i.d.
//! task costs and many tasks per worker, the round-robin and dynamic
//! schedules converge in total time.

use parking_lot::Mutex;
use pevpm::model::build::*;
use pevpm::model::{MsgKind, Stmt};
use pevpm::Model;
use pevpm_mpisim::{RunReport, SimError, SrcSel, World, WorldConfig};
use std::sync::Arc;

const TAG_REQ: u64 = 10;
const TAG_TASK: u64 = 11;
const TAG_STOP: u64 = 12;

/// Configuration of a farm run / model.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Total number of tasks.
    pub tasks: usize,
    /// Mean per-task compute time in seconds.
    pub work_mean_secs: f64,
    /// Half-width of the uniform spread around the mean (0 = constant
    /// work).
    pub work_spread_secs: f64,
    /// Size of a task-description message.
    pub task_bytes: u64,
    /// Size of a result message.
    pub result_bytes: u64,
    /// Seed for per-task work times.
    pub seed: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            tasks: 64,
            work_mean_secs: 0.05,
            work_spread_secs: 0.02,
            task_bytes: 256,
            result_bytes: 1024,
            seed: 99,
        }
    }
}

impl FarmConfig {
    /// Deterministic per-task work time (splitmix64 hash of task id).
    pub fn work_secs(&self, task: u64) -> f64 {
        let mut z = task
            .wrapping_add(self.seed)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (self.work_mean_secs + (2.0 * u - 1.0) * self.work_spread_secs).max(0.0)
    }

    /// Total serial work across all tasks.
    pub fn total_work(&self) -> f64 {
        (0..self.tasks as u64).map(|t| self.work_secs(t)).sum()
    }
}

/// Result of a measured farm execution.
#[derive(Debug, Clone)]
pub struct FarmRun {
    /// World run report.
    pub report: RunReport,
    /// Total virtual time in seconds.
    pub time: f64,
    /// How many tasks each worker processed (index 0 is the master: 0).
    pub tasks_done: Vec<usize>,
}

/// Execute the dynamic task farm. Requires at least 2 ranks.
pub fn run_measured(world: WorldConfig, cfg: &FarmConfig) -> Result<FarmRun, SimError> {
    let n = world.nranks();
    assert!(n >= 2, "a farm needs a master and at least one worker");
    let cfg = cfg.clone();
    let done: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(vec![0; n]));
    let done2 = done.clone();

    let report = World::run(world, move |rank| {
        let me = rank.rank();
        if me == 0 {
            // Master: serve tasks to whoever asks.
            let mut next_task = 0usize;
            let mut stopped = 0usize;
            let workers = rank.nranks() - 1;
            while stopped < workers {
                let (meta, _) = rank.recv(SrcSel::Any, TAG_REQ);
                if next_task < cfg.tasks {
                    // Encode the task id in the payload.
                    rank.send(
                        meta.src,
                        TAG_TASK,
                        (next_task as u64).to_le_bytes().to_vec(),
                    );
                    next_task += 1;
                } else {
                    rank.send_size(meta.src, TAG_STOP, 8);
                    stopped += 1;
                }
            }
        } else {
            // Worker: request, work, repeat.
            let mut count = 0usize;
            loop {
                rank.send_size(0, TAG_REQ, cfg.result_bytes.min(64));
                let (meta, payload) = rank.recv(0, pevpm_mpisim::TagSel::Any);
                if meta.tag == TAG_STOP {
                    break;
                }
                let task = u64::from_le_bytes(payload[..8].try_into().unwrap());
                rank.compute_secs(cfg.work_secs(task));
                count += 1;
            }
            done2.lock()[me] = count;
        }
    })?;

    let time = report.virtual_time.as_secs_f64();
    let tasks_done = done.lock().clone();
    Ok(FarmRun {
        report,
        time,
        tasks_done,
    })
}

/// The PEVPM model of the farm (static round-robin approximation, mean
/// task cost; wildcard receives at the master).
pub fn model(cfg: &FarmConfig) -> Model {
    // Worker w handles ceil-share tasks; for simplicity the model requires
    // tasks % workers == 0 and distributes evenly.
    let req = Stmt::Message {
        kind: MsgKind::Send,
        size: e("64"),
        from: e("procnum"),
        to: e("0"),
        handle: None,
        label: Some("farm-request".into()),
    };
    let reply_any = Stmt::Message {
        kind: MsgKind::Recv,
        size: e("64"),
        from: e("0-1"), // wildcard
        to: e("0"),
        handle: None,
        label: Some("farm-master-recv".into()),
    };
    Model::new()
        .with_param("tasks", cfg.tasks as f64)
        .with_param("taskbytes", cfg.task_bytes as f64)
        .with_param("work", cfg.work_mean_secs)
        .with_stmt(Stmt::Runon {
            branches: vec![
                (
                    e("procnum == 0"),
                    vec![looped_var(
                        "tasks + numprocs - 1",
                        "i",
                        vec![
                            reply_any,
                            labelled(
                                send_expr("taskbytes", "0", "i % (numprocs-1) + 1"),
                                "farm-dispatch",
                            ),
                        ],
                    )],
                ),
                (
                    e("procnum != 0"),
                    vec![
                        looped(
                            "tasks / (numprocs - 1)",
                            vec![
                                req.clone(),
                                labelled(recv_expr("taskbytes", "0", "procnum"), "farm-task-recv"),
                                labelled(serial("work"), "farm-work"),
                            ],
                        ),
                        // Final request answered by a stop message.
                        req,
                        labelled(recv_expr("taskbytes", "0", "procnum"), "farm-stop-recv"),
                    ],
                ),
            ],
        })
}

fn send_expr(size: &str, from: &str, to: &str) -> Stmt {
    Stmt::Message {
        kind: MsgKind::Send,
        size: e(size),
        from: e(from),
        to: e(to),
        handle: None,
        label: None,
    }
}

fn recv_expr(size: &str, from: &str, to: &str) -> Stmt {
    Stmt::Message {
        kind: MsgKind::Recv,
        size: e(size),
        from: e(from),
        to: e(to),
        handle: None,
        label: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_times_are_deterministic_and_bounded() {
        let cfg = FarmConfig::default();
        for t in 0..64u64 {
            let w = cfg.work_secs(t);
            assert_eq!(w, cfg.work_secs(t));
            assert!((0.03 - 1e-12..=0.07 + 1e-12).contains(&w), "w = {w}");
        }
        // Times vary between tasks.
        assert_ne!(cfg.work_secs(1), cfg.work_secs(2));
    }

    #[test]
    fn farm_completes_all_tasks() {
        let cfg = FarmConfig {
            tasks: 20,
            ..Default::default()
        };
        let run = run_measured(WorldConfig::ideal(5, 1), &cfg).unwrap();
        assert_eq!(run.tasks_done.iter().sum::<usize>(), 20);
        assert_eq!(run.tasks_done[0], 0, "master does no tasks");
        // Every worker got at least one task (work ≫ comm here).
        for w in 1..5 {
            assert!(
                run.tasks_done[w] > 0,
                "worker {w} starved: {:?}",
                run.tasks_done
            );
        }
    }

    #[test]
    fn farm_time_scales_with_workers() {
        let cfg = FarmConfig {
            tasks: 24,
            ..Default::default()
        };
        let t2 = run_measured(WorldConfig::ideal(3, 1), &cfg).unwrap().time; // 2 workers
        let t4 = run_measured(WorldConfig::ideal(5, 1), &cfg).unwrap().time; // 4 workers
        assert!(t4 < t2, "t2={t2} t4={t4}");
        // Lower bound: total work / workers.
        assert!(t4 >= cfg.total_work() / 4.0 * 0.9);
    }

    #[test]
    fn dynamic_schedule_balances_uneven_work() {
        // Strong spread: dynamic assignment should not leave any worker
        // with a wildly larger share of the *time* than others.
        let cfg = FarmConfig {
            tasks: 40,
            work_mean_secs: 0.05,
            work_spread_secs: 0.045,
            ..Default::default()
        };
        let run = run_measured(WorldConfig::ideal(5, 1), &cfg).unwrap();
        let ideal = cfg.total_work() / 4.0;
        assert!(
            run.time < ideal * 1.25,
            "dynamic farm too unbalanced: {} vs ideal {ideal}",
            run.time
        );
    }

    #[test]
    fn model_evaluates_and_matches_total_work() {
        let cfg = FarmConfig {
            tasks: 24,
            work_spread_secs: 0.0, // constant work → model is exact
            ..Default::default()
        };
        let m = model(&cfg);
        assert!(
            m.check_bindings(&Default::default()).is_ok(),
            "unbound model params"
        );
        let timing = pevpm::TimingModel::hockney(100e-6, 12.5e6);
        let pred = pevpm::evaluate(&m, &pevpm::EvalConfig::new(4), &timing).unwrap();
        // 3 workers × 8 tasks × 0.05 s plus comm overheads.
        let floor = 8.0 * cfg.work_mean_secs;
        assert!(
            pred.makespan >= floor && pred.makespan < floor * 1.5,
            "makespan {} vs floor {floor}",
            pred.makespan
        );
    }

    #[test]
    fn model_and_measured_agree_for_constant_work() {
        let cfg = FarmConfig {
            tasks: 24,
            work_mean_secs: 0.05,
            work_spread_secs: 0.0,
            ..Default::default()
        };
        let measured = run_measured(WorldConfig::ideal(4, 1), &cfg).unwrap().time;
        let timing = pevpm::TimingModel::hockney(60e-6, 12.5e6);
        let predicted = pevpm::evaluate(&model(&cfg), &pevpm::EvalConfig::new(4), &timing)
            .unwrap()
            .makespan;
        let rel = (predicted - measured).abs() / measured;
        assert!(
            rel < 0.2,
            "farm prediction off by {:.0}%: measured {measured}, predicted {predicted}",
            rel * 100.0
        );
    }
}
