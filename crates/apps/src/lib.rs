//! Example parallel applications for the MPIBench/PEVPM reproduction.
//!
//! The paper's §6 evaluates PEVPM on the three general communication
//! classes of message-passing programs; each is implemented here twice —
//! as a *real* rank program executed on the simulated cluster (the
//! "measured" side) and as a PEVPM directive model (the "predicted" side):
//!
//! - [`jacobi`] — Jacobi iteration: **regular-local** (halo exchange on a
//!   1-D decomposition; the paper's main example, Figure 5/6);
//! - [`fft`] — four-step distributed FFT: **regular-global** (personalised
//!   all-to-all transpose);
//! - [`taskfarm`] — dynamic bag of tasks: **irregular** (wildcard receives
//!   at a master, data-dependent schedule).
//!
//! All three carry real numerics (stencil arithmetic, complex FFT
//! butterflies, per-task work functions) so their outputs are verifiable,
//! while their virtual-time cost is charged through calibrated serial-time
//! constants exactly as the paper does for the Jacobi example.

pub mod fft;
pub mod jacobi;
pub mod taskfarm;

pub use fft::{FftConfig, FftRun};
pub use jacobi::{JacobiConfig, JacobiRun};
pub use taskfarm::{FarmConfig, FarmRun};
