//! `pevpm` — command-line interface to the MPIBench/PEVPM reproduction.
//!
//! ```text
//! pevpm bench    --nodes N [--ppn P] [--machine perseus|gigabit|lowlatency]
//!                [--pattern ring|halfsplit|adjacent] [--sizes 512,1024,...]
//!                [--reps R] [--replicas K] [--threads T] [--seed S]
//!                --out DB.dist
//! pevpm inspect  --db DB.dist
//! pevpm fit      --db DB.dist --out FITTED.dist
//! pevpm annotate FILE.c
//! pevpm predict  --model FILE.c --db DB.dist --procs N
//!                [--mode dist|avg|min] [--pingpong] [--param k=v ...]
//!                [--seed S] [--reps R] [--threads T]
//! ```
//!
//! Command implementations return their printable output so they are unit
//! testable; `main.rs` is a thin shell.

pub mod args;

use args::{ArgError, Args};
use pevpm::timing::{PredictionMode, TimingModel};
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{io as dist_io, CommDist, DistTable, Op};
use pevpm_mpibench::{run_p2p_reps, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::{ClusterConfig, Placement, ProtocolConfig, WorldConfig};
use std::path::Path;

/// CLI error type: a message to print on stderr.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError(e.0)
    }
}

fn err<T>(m: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(m.into()))
}

/// Usage text.
pub const USAGE: &str = "\
pevpm — MPI communication benchmarking and performance modelling (reproduction)

USAGE:
  pevpm bench    --nodes N [--ppn P] [--machine perseus|gigabit|lowlatency]
                 [--pattern ring|halfsplit|adjacent] [--sizes 512,1024,...]
                 [--reps R] [--replicas K] [--threads T] [--seed S]
                 --out DB.dist
      Run MPIBench on a simulated cluster and save the distribution database.
      --replicas K merges K independent derived-seed runs; --threads T fans
      replicas over T worker threads (0 = all cores, 1 = serial) with
      bitwise-identical output at any thread count.

  pevpm inspect  --db DB.dist
      Summarise a distribution database.

  pevpm fit      --db DB.dist --out FITTED.dist
      Replace histograms by best-fit parametric models (compact database).

  pevpm annotate FILE.c
      Parse `// PEVPM` annotations and print the extracted model.

  pevpm predict  --model FILE.c --db DB.dist --procs N [--mode dist|avg|min]
                 [--pingpong] [--param k=v ...] [--seed S] [--reps R]
                 [--threads T]
      Evaluate the annotated program's PEVPM model against a database.
      --reps R > 1 runs a Monte-Carlo batch of R derived-seed replications
      (mean +/- stderr); --threads T as for bench.
";

/// Boolean flags that never consume a following token.
const BOOL_FLAGS: &[&str] = &["pingpong", "verbose", "help"];

/// Dispatch a full argument vector (without the program name).
pub fn run(tokens: Vec<String>) -> Result<String, CliError> {
    let args = Args::parse_with_flags(tokens, BOOL_FLAGS)?;
    let Some(cmd) = args.positional().first().map(|s| s.as_str()) else {
        return err(USAGE);
    };
    match cmd {
        "bench" => cmd_bench(&args),
        "inspect" => cmd_inspect(&args),
        "fit" => cmd_fit(&args),
        "annotate" => cmd_annotate(&args),
        "predict" => cmd_predict(&args),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn cluster_for(machine: &str, nodes: usize) -> Result<ClusterConfig, CliError> {
    match machine {
        "perseus" => Ok(ClusterConfig::perseus(nodes)),
        "gigabit" => Ok(ClusterConfig::gigabit(nodes)),
        "lowlatency" => Ok(ClusterConfig::lowlatency(nodes)),
        other => err(format!(
            "unknown machine {other:?} (perseus|gigabit|lowlatency)"
        )),
    }
}

fn cmd_bench(args: &Args) -> Result<String, CliError> {
    let nodes: usize = args
        .require("nodes")?
        .parse()
        .map_err(|_| CliError("--nodes must be an integer".into()))?;
    let ppn: usize = args.get_parsed("ppn", 1)?;
    let reps: usize = args.get_parsed("reps", 60)?;
    let replicas: usize = args.get_parsed("replicas", 1)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let sizes: Vec<u64> = args.get_list("sizes", vec![256, 512, 1024, 2048, 4096])?;
    let machine = args.get("machine").unwrap_or("perseus");
    let pattern = match args.get("pattern").unwrap_or("ring") {
        "ring" => PairPattern::Ring,
        "halfsplit" => PairPattern::HalfSplit,
        "adjacent" => PairPattern::Adjacent,
        other => return err(format!("unknown pattern {other:?}")),
    };
    let out = args.require("out")?;

    let world = WorldConfig {
        cluster: cluster_for(machine, nodes)?,
        procs_per_node: ppn,
        placement: Placement::Block,
        protocol: ProtocolConfig::default(),
        seed,
        virtual_deadline: None,
        record_trace: false,
    };
    let res = run_p2p_reps(
        &P2pConfig {
            world,
            sizes: sizes.clone(),
            repetitions: reps,
            warmup: (reps / 10).max(2),
            sync_every: 1,
            pattern,
            direction: Direction::Exchange,
            clock: None,
        },
        replicas,
        threads,
    )
    .map_err(|e| CliError(format!("benchmark failed: {e}")))?;

    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    dist_io::save_table(&table, Path::new(out))
        .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;

    let mut report = format!(
        "benchmarked {nodes}x{ppn} on {machine} ({} messages/size, pattern {:?})\n",
        res.by_size.first().map(|s| s.samples.len()).unwrap_or(0),
        pattern
    );
    for s in &res.by_size {
        report.push_str(&format!(
            "  {:>8} B: min {:>9.1}us avg {:>9.1}us max {:>10.1}us\n",
            s.size,
            s.summary.min().unwrap_or(0.0) * 1e6,
            s.summary.mean().unwrap_or(0.0) * 1e6,
            s.summary.max().unwrap_or(0.0) * 1e6,
        ));
    }
    report.push_str(&format!("database written to {out}\n"));
    Ok(report)
}

fn load_db(args: &Args) -> Result<DistTable, CliError> {
    let path = args.require("db")?;
    dist_io::load_table(Path::new(path)).map_err(|e| CliError(format!("cannot load {path}: {e}")))
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let table = load_db(args)?;
    let mut out = format!("{} entries\n", table.len());
    for (key, dist) in table.iter() {
        let kind = match dist {
            CommDist::Hist(h) => format!("hist[{} bins, {} samples]", h.num_bins(), h.total()),
            CommDist::Fit(f) => format!("fit[{:?}]", f.kind),
            CommDist::Point(_) => "point".to_string(),
        };
        out.push_str(&format!(
            "  {:<10} size {:>8} B  contention {:>4}  min {:>9.1}us  mean {:>9.1}us  {}\n",
            key.op.to_string(),
            key.size,
            key.contention,
            dist.min() * 1e6,
            dist.mean() * 1e6,
            kind
        ));
    }
    Ok(out)
}

fn cmd_fit(args: &Args) -> Result<String, CliError> {
    let table = load_db(args)?;
    let out_path = args.require("out")?;
    let fitted = table.fitted();
    let before = dist_io::write_table(&table).len();
    let after = dist_io::write_table(&fitted).len();
    dist_io::save_table(&fitted, Path::new(out_path))
        .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
    Ok(format!(
        "fitted {} entries: {} -> {} bytes ({:.1}x smaller), written to {out_path}\n",
        fitted.len(),
        before,
        after,
        before as f64 / after.max(1) as f64
    ))
}

fn describe_model(model: &pevpm::Model) -> String {
    fn walk(stmts: &[pevpm::Stmt], depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for s in stmts {
            match s {
                pevpm::Stmt::Loop { count, var, body } => {
                    out.push_str(&format!(
                        "{pad}Loop iterations = {count}{}\n",
                        var.as_ref()
                            .map(|v| format!(", var {v}"))
                            .unwrap_or_default()
                    ));
                    walk(body, depth + 1, out);
                }
                pevpm::Stmt::Runon { branches } => {
                    out.push_str(&format!("{pad}Runon ({} branches)\n", branches.len()));
                    for (cond, b) in branches {
                        out.push_str(&format!("{pad}  when {cond}\n"));
                        walk(b, depth + 2, out);
                    }
                }
                pevpm::Stmt::Message {
                    kind,
                    size,
                    from,
                    to,
                    handle,
                    label,
                } => {
                    out.push_str(&format!(
                        "{pad}Message {kind:?} size = {size}, {from} -> {to}{}{}\n",
                        handle
                            .as_ref()
                            .map(|h| format!(", handle {h}"))
                            .unwrap_or_default(),
                        label
                            .as_ref()
                            .map(|l| format!(" [{l}]"))
                            .unwrap_or_default()
                    ));
                }
                pevpm::Stmt::Wait { handle, .. } => {
                    out.push_str(&format!("{pad}Wait handle = {handle}\n"));
                }
                pevpm::Stmt::Serial { time, machine, .. } => {
                    out.push_str(&format!(
                        "{pad}Serial{} time = {time}\n",
                        machine
                            .as_ref()
                            .map(|m| format!(" on {m}"))
                            .unwrap_or_default()
                    ));
                }
                pevpm::Stmt::Collective { op, size, .. } => {
                    out.push_str(&format!("{pad}Collective {op:?} size = {size}\n"));
                }
            }
        }
    }
    let mut out = String::new();
    walk(&model.stmts, 0, &mut out);
    out
}

fn cmd_annotate(args: &Args) -> Result<String, CliError> {
    let Some(path) = args.positional().get(1) else {
        return err("usage: pevpm annotate FILE.c");
    };
    let src =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let model = pevpm::parse_annotations(&src).map_err(|e| CliError(format!("{path}: {e}")))?;
    Ok(format!(
        "{} directives, free parameters {:?}\n{}",
        model.num_stmts(),
        model.free_variables(),
        describe_model(&model)
    ))
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let procs: usize = args
        .require("procs")?
        .parse()
        .map_err(|_| CliError("--procs must be an integer".into()))?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let reps: usize = args.get_parsed("reps", 1)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let table = load_db(args)?;

    let src = std::fs::read_to_string(model_path)
        .map_err(|e| CliError(format!("cannot read {model_path}: {e}")))?;
    let model =
        pevpm::parse_annotations(&src).map_err(|e| CliError(format!("{model_path}: {e}")))?;

    let mode = match args.get("mode").unwrap_or("dist") {
        "dist" => PredictionMode::FullDistribution,
        "avg" => PredictionMode::Average,
        "min" => PredictionMode::Minimum,
        other => return err(format!("unknown mode {other:?} (dist|avg|min)")),
    };
    let timing = if args.has("pingpong") {
        TimingModel::pingpong_only(&table, mode)
    } else {
        match mode {
            PredictionMode::FullDistribution => TimingModel::distributions(table),
            PredictionMode::Average => TimingModel::point(table, pevpm_dist::PointKind::Average),
            PredictionMode::Minimum => TimingModel::point(table, pevpm_dist::PointKind::Minimum),
        }
    };

    let mut cfg = EvalConfig::new(procs).with_seed(seed).with_threads(threads);
    for kv in args.values("param") {
        let Some((k, v)) = kv.split_once('=') else {
            return err(format!("--param expects k=v, got {kv:?}"));
        };
        let v: f64 = v
            .parse()
            .map_err(|_| CliError(format!("--param {k}: bad number {v:?}")))?;
        cfg = cfg.with_param(k, v);
    }

    if reps == 0 {
        return err("--reps must be at least 1");
    }
    if reps > 1 {
        let mc = pevpm::vm::monte_carlo(&model, &cfg, &timing, reps)
            .map_err(|e| CliError(format!("evaluation failed: {e}")))?;
        return Ok(format!(
            "predicted makespan: {:.6} s +/- {:.6} (stderr) over {procs} procs\n\
             {} replications in {:.3} s ({:.0} evals/s), range [{:.6}, {:.6}] s\n",
            mc.mean, mc.stderr, reps, mc.wall_secs, mc.evals_per_sec, mc.min, mc.max
        ));
    }

    let p =
        evaluate(&model, &cfg, &timing).map_err(|e| CliError(format!("evaluation failed: {e}")))?;

    let mut out = format!(
        "predicted makespan: {:.6} s over {} procs ({} messages)\n",
        p.makespan, p.nprocs, p.messages
    );
    let mut losses: Vec<(&String, &f64)> = p.loss_by_label.iter().collect();
    losses.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    if !losses.is_empty() {
        out.push_str("top blocking sources:\n");
        for (label, loss) in losses.iter().take(5) {
            out.push_str(&format!("  {label:<24} {:.6} s\n", **loss));
        }
    }
    if !p.races.is_empty() {
        out.push_str(&format!("{} potential race(s) detected:\n", p.races.len()));
        for (proc_, what) in p.races.iter().take(5) {
            out.push_str(&format!("  proc {proc_}: {what}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(s: &str) -> Result<String, CliError> {
        run(s.split_whitespace().map(String::from).collect())
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pevpm_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cmd("help").unwrap().contains("USAGE"));
        assert!(run_cmd("frobnicate").is_err());
        assert!(run(vec![]).is_err());
    }

    #[test]
    fn bench_inspect_fit_predict_pipeline() {
        let dir = tmpdir();
        let db = dir.join("db.dist");
        let fitted = dir.join("fitted.dist");
        let model = dir.join("pingpong.c");

        // bench
        let out = run_cmd(&format!(
            "bench --nodes 4 --ppn 1 --sizes 512,1024 --reps 15 --seed 3 --out {}",
            db.display()
        ))
        .unwrap();
        assert!(out.contains("database written"), "{out}");
        assert!(db.exists());

        // inspect
        let out = run_cmd(&format!("inspect --db {}", db.display())).unwrap();
        assert!(out.contains("2 entries"), "{out}");
        assert!(out.contains("hist["), "{out}");

        // fit
        let out = run_cmd(&format!(
            "fit --db {} --out {}",
            db.display(),
            fitted.display()
        ))
        .unwrap();
        assert!(out.contains("smaller"), "{out}");

        // annotate + predict
        std::fs::write(
            &model,
            "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
",
        )
        .unwrap();
        let out = run_cmd(&format!("annotate {}", model.display())).unwrap();
        assert!(out.contains("free parameters [\"rounds\"]"), "{out}");

        for mode in ["dist", "avg", "min"] {
            let out = run_cmd(&format!(
                "predict --model {} --db {} --procs 2 --mode {mode} --param rounds=20",
                model.display(),
                db.display()
            ))
            .unwrap();
            assert!(out.contains("predicted makespan"), "{out}");
        }
        // Monte-Carlo batch over threads.
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --reps 8 --threads 2 --param rounds=20",
            model.display(),
            db.display()
        ))
        .unwrap();
        assert!(out.contains("8 replications"), "{out}");
        assert!(out.contains("stderr"), "{out}");

        // Fitted database predicts too.
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --param rounds=20",
            model.display(),
            fitted.display()
        ))
        .unwrap();
        assert!(out.contains("predicted makespan"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_rejects_bad_inputs() {
        assert!(run_cmd("predict --procs 2 --db nope.dist").is_err()); // missing --model
        assert!(run_cmd("predict --model x.c --procs 2 --db /no/such.dist").is_err());
        assert!(run_cmd("bench --out /tmp/x.dist").is_err()); // missing --nodes
        assert!(run_cmd("bench --nodes 2 --machine warp --out /tmp/x.dist").is_err());
        assert!(run_cmd("annotate").is_err());
    }
}
