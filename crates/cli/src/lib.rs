//! `pevpm` — command-line interface to the MPIBench/PEVPM reproduction.
//!
//! ```text
//! pevpm bench    --nodes N [--ppn P] [--machine perseus|gigabit|lowlatency]
//!                [--pattern ring|halfsplit|adjacent] [--sizes 512,1024,...]
//!                [--reps R] [--replicas K] [--threads T] [--seed S]
//!                --out DB.dist
//! pevpm inspect  --db DB.dist
//! pevpm fit      --db DB.dist --out FITTED.dist
//! pevpm annotate FILE.c
//! pevpm predict  --model FILE.c --db DB.dist --procs N
//!                [--mode dist|avg|min] [--pingpong] [--param k=v ...]
//!                [--seed S] [--reps R] [--threads T] [--eval-threads E]
//!                [--trace-out TRACE.json] [--metrics-out METRICS.json]
//! pevpm serve    --db [NAME=]DB.dist ... [--addr HOST:PORT] [--threads T]
//!                [--eval-threads E]
//!                [--http HOST:PORT] [--log-out FILE] [--log-slow-ms MS]
//! pevpm client   (--addr HOST:PORT | --port-file PATH) --model FILE.c --procs N
//! pevpm trace    --nodes N [--ppn P] [--xsize X] [--iters I]
//!                [--db DB.dist] [--trace-out TRACE.json]
//! ```
//!
//! Command implementations return their printable output so they are unit
//! testable; `main.rs` is a thin shell.

// The CLI fronts untrusted input (files, flags): every failure must map
// to a structured CliError with an exit code, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod args;

use args::{ArgError, Args};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{io as dist_io, CommDist, CompileOptions, DistTable, Op};
use pevpm_mpibench::{run_p2p_reps, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::{ClusterConfig, FaultPlan, Placement, ProtocolConfig, WorldConfig};
use pevpm_obs::{diag, Registry, Verbosity};
use pevpm_serve::plan::{self, EvalOutcome, PlanError, PlanErrorKind, PredictRequest};
use pevpm_serve::{chaos, Client, ClientConfig, ServeConfig, Server, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// SIGTERM handling for `pevpm serve`: a minimal async-signal-safe
/// handler (one atomic store — the poll-based equivalent of the classic
/// self-pipe trick) that flips a flag the daemon's accept loop polls, so
/// `kill <pid>` triggers the same graceful drain as a `shutdown` frame.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::AtomicBool;

    /// Set by the handler; polled by [`pevpm_serve::Server::run_until`].
    pub static FLAG: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigterm(_signum: i32) {
        // Only an atomic store: the full async-signal-safe budget.
        FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Install the handler. Best effort: on failure the daemon still
    /// runs, it just won't drain gracefully on SIGTERM.
    pub fn install() {
        extern "C" {
            // POSIX `signal(2)`; the CLI avoids a libc crate dependency.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sigterm {
    use std::sync::atomic::AtomicBool;

    /// Never set on non-unix platforms (no SIGTERM to handle).
    pub static FLAG: AtomicBool = AtomicBool::new(false);

    /// No-op off unix.
    pub fn install() {}
}

/// Exit code for usage errors (bad flags, unknown commands/machines).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for input/model errors (unreadable or invalid files,
/// failed runs, replication failures).
pub const EXIT_INPUT: i32 = 3;
/// Exit code for budget-exceeded / deadlock terminations: the model was
/// well-formed but evaluation had to be aborted.
pub const EXIT_BUDGET: i32 = 4;

/// CLI error type: a message to print on stderr plus the process exit
/// code mandated by the documented contract (0 ok, 2 usage, 3
/// input/model error, 4 budget exceeded or deadlock).
#[derive(Debug)]
pub struct CliError {
    /// Message printed on stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(m: impl Into<String>) -> Self {
        CliError {
            message: m.into(),
            code: EXIT_USAGE,
        }
    }

    /// An input or model error (exit code 3).
    pub fn input(m: impl Into<String>) -> Self {
        CliError {
            message: m.into(),
            code: EXIT_INPUT,
        }
    }

    /// A budget-exceeded / deadlock termination (exit code 4).
    pub fn budget(m: impl Into<String>) -> Self {
        CliError {
            message: m.into(),
            code: EXIT_BUDGET,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::usage(e.0)
    }
}

impl From<PlanError> for CliError {
    fn from(e: PlanError) -> Self {
        CliError {
            message: e.message,
            code: match e.kind {
                PlanErrorKind::Usage => EXIT_USAGE,
                PlanErrorKind::Input => EXIT_INPUT,
                PlanErrorKind::Budget => EXIT_BUDGET,
            },
        }
    }
}

fn err<T>(m: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::usage(m))
}

/// Map an evaluation failure onto the exit-code contract: deadlocks and
/// budget aborts are *terminations* (4); everything else — unknown
/// parameters, missing distributions, replication quorum failures — is a
/// model/input error (3).
fn eval_error(e: pevpm::vm::PevpmError) -> CliError {
    use pevpm::vm::PevpmError;
    match &e {
        PevpmError::Deadlock { .. } | PevpmError::Budget(_) => {
            CliError::budget(format!("evaluation failed: {e}"))
        }
        _ => CliError::input(format!("evaluation failed: {e}")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
pevpm — MPI communication benchmarking and performance modelling (reproduction)

USAGE:
  pevpm bench    --nodes N [--ppn P] [--machine perseus|gigabit|lowlatency|ideal]
                 [--pattern ring|halfsplit|adjacent] [--sizes 512,1024,...]
                 [--reps R] [--replicas K] [--threads T] [--seed S]
                 [--faults PLAN.toml] --out DB.dist
      Run MPIBench on a simulated cluster and save the distribution database.
      --replicas K merges K independent derived-seed runs; --threads T fans
      replicas over T worker threads (0 = all cores, 1 = serial) with
      bitwise-identical output at any thread count. --faults degrades the
      simulated network with a TOML fault scenario (random frame loss,
      per-link degradation, link flaps, background traffic, node pauses) so
      the same sweep can be re-measured on an unhealthy machine.

  pevpm inspect  --db DB.dist
      Summarise a distribution database.

  pevpm fit      --db DB.dist --out FITTED.dist
      Replace histograms by best-fit parametric models (compact database).

  pevpm annotate FILE.c
      Parse `// PEVPM` annotations and print the extracted model.

  pevpm predict  --model FILE.c --db DB.dist --procs N [--mode dist|avg|min]
                 [--pingpong] [--exact-quantiles] [--param k=v ...] [--seed S]
                 [--reps R] [--threads T] [--eval-threads E] [--quorum K]
                 [--precision P] [--min-reps N] [--max-reps N] [--antithetic]
                 [--max-steps N] [--max-virtual-secs S]
                 [--trace-out TRACE.json] [--metrics-out M.json]
      Evaluate the annotated program's PEVPM model against a database.
      --reps R > 1 runs a Monte-Carlo batch of R derived-seed replications
      (mean +/- stderr); --threads T as for bench. --eval-threads E >= 1
      parallelises *inside* each evaluation: the model program is
      SCC-decomposed into independent rank components scheduled
      concurrently, with bitwise-identical predictions at every E (0, the
      default, keeps the classic serial engine). --threads and
      --eval-threads share one core budget, so R x E replica-workers never
      oversubscribe the host. --quorum K lets the
      batch complete when at least K replications succeed: failed
      replications are listed in the report and counted in the
      mc.replica_failures metric instead of aborting. --precision P
      switches the batch to adaptive (sequential-stopping) replication:
      replications run in the usual derived-seed order until the 95%
      Student-t confidence half-width on the predicted mean falls to P of
      the mean, bounded by --min-reps (default 4) and --max-reps (default
      64); the report states the rep count chosen and the achieved
      half-width, and warns if the replication stream drifts
      (non-stationarity). Adaptive runs are deterministic for a given
      (seed, precision); fixed --reps stays bitwise-identical with or
      without this feature built. --antithetic pairs replications on
      mirrored random streams (replica 2k and 2k+1 share a seed, the odd
      one sees 1-u for every quantile draw u), a variance-reduction
      device for smooth models. --max-steps /
      --max-virtual-secs bound each evaluation (directive executions /
      simulated seconds); a replication over budget fails with a
      structured diagnostic (exit 4 unless --quorum absorbs it). --trace-out writes the
      predicted timeline as Chrome trace_event JSON (open in
      chrome://tracing or https://ui.perfetto.dev); --metrics-out dumps the
      engine's metrics registry (sweep/match counts, contention and
      scoreboard-occupancy histograms, per-directive losses) as JSON.
      --exact-quantiles answers fitted-distribution inverse-CDF queries by
      exact bisection instead of the compiled quantile lookup table
      (slower; bounds the LUT's <=0.1% relative interpolation error).
      --trace-out also carries a pid-4 service-stages track with the
      prediction's validate/model/compile/eval/render stage windows.

  pevpm serve    --db [NAME=]DB.dist ... [--addr HOST:PORT] [--threads T]
                 [--eval-threads E] [--conns C] [--io-timeout-ms MS]
                 [--inflight N] [--queue N] [--shed-retry-ms MS]
                 [--drain-ms MS]
                 [--max-reps N] [--max-steps N] [--max-virtual-secs S]
                 [--port-file PATH] [--metrics-out M.json]
                 [--http HOST:PORT] [--log-out FILE] [--log-slow-ms MS]
                 [--span-cap N]
      Start the long-running prediction daemon. Every --db table is loaded
      and content-hashed once at startup; parsed models and compiled
      timing models are cached across requests, so a stream of what-if
      questions pays each compilation exactly once. Requests arrive as
      length-prefixed JSON frames (see DESIGN.md \"Prediction service\")
      and are answered deterministically: the same request gets the same
      bytes back whether the cache is cold, warm, or the request rides in
      a batch. --addr defaults to 127.0.0.1:0 (OS-assigned port);
      --port-file writes the bound address for scripts. --max-reps
      rejects fixed-reps requests asking for more replications
      (admission control) and tightens adaptive requests' rep ceiling to
      the server cap (a tighter request cap wins);
      --max-steps / --max-virtual-secs cap every evaluation's run budget
      (a tighter request cap wins). A `shutdown` request exits the loop;
      --metrics-out then dumps the server's metrics registry (request,
      cache and panic counters) as metrics JSON. --http starts the
      observability sidecar serving Prometheus text on /metrics, a
      liveness document on /healthz, and the most recent request spans
      on /spans?last=N; with --port-file, the sidecar's bound address is
      written as the port file's second line. --log-out / --log-slow-ms
      enable the structured request log: one JSON line per finished
      request (id, op, stage windows, cache hits, outcome) to FILE or
      stderr, skipping requests faster than MS milliseconds. --span-cap
      bounds the in-memory span ring (default 1024). Telemetry is
      observational only: responses are byte-identical with it on or off.
      --conns C serves up to C connections concurrently (default 4)
      through a fixed worker pool; responses stay bitwise identical at
      every C, and conns x reps-pool x eval-threads shares one host core
      budget. --io-timeout-ms puts read/write deadlines on every
      protocol socket (default 30000; 0 disables): an idle peer is
      quietly evicted, a peer stalled mid-frame gets a structured
      \"timeout\" error and a closed socket. --inflight N bounds
      concurrently-evaluating predictions (default: the pool width) with
      a --queue N wait queue (default: same as --inflight); past both
      the daemon sheds with an \"overloaded\" response carrying a
      retry_after_ms hint (--shed-retry-ms, default 100) instead of
      queueing unboundedly. On `shutdown` or SIGTERM the daemon drains
      gracefully: stops accepting, lets in-flight requests finish for up
      to --drain-ms (default 2000), flushes telemetry, then exits.

  pevpm client   (--addr HOST:PORT | --port-file PATH) [--stats] [--ping]
                 [--shutdown] [--batch K] [--crn] [--table NAME]
                 [--connect-timeout-ms MS] [--retries N]
                 [--retry-backoff-ms MS] [--chaos MODE|all]
                 [predict flags: --model FILE.c --procs N ...]
      Send requests to a running daemon and print one response JSON line
      each. With --model, sends the same prediction `predict` would run
      (accepts the same flags); --batch K sends it as one batch of K
      identical items. --crn marks the batch for common random numbers:
      the daemon evaluates every item of the batch from one shared base
      seed, so what-if arms differ only by the modelled change, not by
      sampling noise (paired comparison). --stats fetches the server's
      metrics registry
      (cache hit/miss/compile counters included) plus span-derived
      per-stage p50/p95/p99 latencies, rendered as a table on stderr
      (stdout stays one machine-parseable JSON line); --shutdown asks the
      daemon to exit. Operations run in order: predict, stats, shutdown.
      Transport policy: --connect-timeout-ms (default 5000) bounds each
      connect attempt so a blackholed address fails fast (exit 3);
      --retries N (default 3) retries connect-refused/timed-out attempts
      and \"overloaded\" responses with deterministic jittered
      exponential backoff from --retry-backoff-ms (default 50). Failures
      after a request frame was sent are never retried: the daemon may
      have executed the request, and resending would break exactly-once
      batch accounting. --chaos runs fault injection against the daemon
      (modes: truncated-prefix, stalled-write, half-open, oversized,
      garbage, slow-read, or all), printing one report JSON line per
      mode and exiting 3 if the daemon stops answering; pass the
      daemon's --io-timeout-ms so stall modes wait just long enough.

  pevpm trace    --nodes N [--ppn P] [--machine perseus|gigabit|lowlatency|ideal]
                 [--xsize X] [--iters I] [--serial-ms MS] [--seed S]
                 [--db DB.dist] [--faults PLAN.toml] [--exact-quantiles]
                 [--trace-out TRACE.json]
      Run the Jacobi example on the simulated cluster with tracing enabled
      and print the per-rank compute/send/blocked breakdown. --trace-out
      writes a merged Chrome trace with the PEVPM *predicted* timeline
      (pid 1) next to the *measured* per-rank timeline (pid 2) and, when
      --faults is given, injected-fault marks (pid 3); the prediction
      samples --db when given, else an analytic Hockney model.

  pevpm fuzz     [--mode differential|metamorphic|ks|diagnostics|dag|adaptive|all]
                 [--programs N] [--seed S] [--alpha A] [--reps R]
                 [--ks-runs K] [--bench-reps B] [--out DIR]
                 [--replay FILE.model]
      Differential conformance fuzzing: generate N random well-formed
      model programs per mode and gate them with the oracle hierarchy
      (bitwise interpreted/compiled/unfolded agreement, two-sample KS at
      significance A against mpisim co-simulation, size-scaling and
      empty-fault-plan metamorphic relations, deadlock diagnostics,
      DAG-scheduler thread-count invariance, adaptive-stopping
      agreement with fixed max-reps batches).
      Failing programs are shrunk to minimal counterexamples; --out DIR
      writes each as a replayable .model artifact. --replay re-runs one
      artifact under its recorded oracle and reports whether it still
      reproduces. Counterexamples (or a reproducing replay) exit 3.

GLOBAL FLAGS:
  -q / --quiet     suppress informational stderr output
  --verbose        enable debug stderr output

`bench` also accepts --trace-out (Chrome trace of one benchmark replica)
and --metrics-out (per-size latency histograms as metrics JSON).

EXIT CODES:
  0  success
  2  usage error (bad flags, unknown command/machine)
  3  input or model error (unreadable/invalid files, failed runs)
  4  evaluation terminated: run budget exceeded or deadlock detected
";

/// Boolean flags that never consume a following token.
const BOOL_FLAGS: &[&str] = &[
    "pingpong",
    "exact-quantiles",
    "verbose",
    "quiet",
    "help",
    "stats",
    "ping",
    "shutdown",
    "antithetic",
    "crn",
];

/// Dispatch a full argument vector (without the program name).
pub fn run(tokens: Vec<String>) -> Result<String, CliError> {
    // The parser only understands `--long` options; accept the
    // conventional short spellings for the global verbosity flags.
    let tokens: Vec<String> = tokens
        .into_iter()
        .map(|t| match t.as_str() {
            "-q" => "--quiet".to_string(),
            "-v" => "--verbose".to_string(),
            _ => t,
        })
        .collect();
    let args = Args::parse_with_flags(tokens, BOOL_FLAGS)?;
    diag::set_verbosity(if args.has("quiet") {
        Verbosity::Quiet
    } else if args.has("verbose") {
        Verbosity::Verbose
    } else {
        Verbosity::Normal
    });
    let Some(cmd) = args.positional().first().map(|s| s.as_str()) else {
        return err(USAGE);
    };
    match cmd {
        "bench" => cmd_bench(&args),
        "inspect" => cmd_inspect(&args),
        "fit" => cmd_fit(&args),
        "annotate" => cmd_annotate(&args),
        "predict" => cmd_predict(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "trace" => cmd_trace(&args),
        "fuzz" => cmd_fuzz(&args),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn write_text(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| CliError::input(format!("cannot write {path}: {e}")))
}

/// Machines selectable with `--machine`, in the order shown to the user.
pub const MACHINES: &[&str] = &["perseus", "gigabit", "lowlatency", "ideal"];

/// Resolve `--machine` (default `perseus`). An unknown machine is a hard
/// usage error listing the valid names — never a silent fallback.
fn resolve_machine(args: &Args) -> Result<&'static str, CliError> {
    let m = args.get("machine").unwrap_or("perseus");
    MACHINES.iter().copied().find(|k| *k == m).ok_or_else(|| {
        CliError::usage(format!(
            "unknown machine {m:?}; valid machines: {}",
            MACHINES.join(", ")
        ))
    })
}

fn cluster_for(args: &Args, nodes: usize) -> Result<ClusterConfig, CliError> {
    let mut cluster = match resolve_machine(args)? {
        "gigabit" => ClusterConfig::gigabit(nodes),
        "lowlatency" => ClusterConfig::lowlatency(nodes),
        "ideal" => ClusterConfig::ideal(nodes),
        _ => ClusterConfig::perseus(nodes),
    };
    cluster.faults = load_faults(args, &cluster)?;
    Ok(cluster)
}

/// Load and validate a `--faults PLAN.toml` fault scenario. Errors name
/// the file (and line, for parse failures) and exit with code 3.
fn load_faults(args: &Args, cluster: &ClusterConfig) -> Result<Option<FaultPlan>, CliError> {
    let Some(path) = args.get("faults") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("cannot read {path}: {e}")))?;
    let plan = FaultPlan::parse_toml(&text).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    plan.validate(cluster)
        .map_err(|e| CliError::input(format!("{path}: {e}")))?;
    if plan.is_empty() {
        diag::info(&format!("fault plan {path} is empty (no-op)"));
    }
    Ok(Some(plan))
}

fn cmd_bench(args: &Args) -> Result<String, CliError> {
    let nodes: usize = args
        .require("nodes")?
        .parse()
        .map_err(|_| CliError::usage("--nodes must be an integer"))?;
    let ppn: usize = args.get_parsed("ppn", 1)?;
    let reps: usize = args.get_parsed("reps", 60)?;
    let replicas: usize = args.get_parsed("replicas", 1)?;
    let threads: usize = args.get_parsed("threads", 0)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let sizes: Vec<u64> = args.get_list("sizes", vec![256, 512, 1024, 2048, 4096])?;
    let machine = resolve_machine(args)?;
    let pattern = match args.get("pattern").unwrap_or("ring") {
        "ring" => PairPattern::Ring,
        "halfsplit" => PairPattern::HalfSplit,
        "adjacent" => PairPattern::Adjacent,
        other => return err(format!("unknown pattern {other:?}")),
    };
    let out = args.require("out")?;
    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");

    diag::info(&format!(
        "benchmarking {nodes}x{ppn} on {machine} ({} sizes, {reps} reps, {replicas} replica(s))",
        sizes.len()
    ));
    let world = WorldConfig {
        cluster: cluster_for(args, nodes)?,
        procs_per_node: ppn,
        placement: Placement::Block,
        protocol: ProtocolConfig::default(),
        seed,
        virtual_deadline: None,
        record_trace: trace_out.is_some(),
    };
    let res = run_p2p_reps(
        &P2pConfig {
            world,
            sizes: sizes.clone(),
            repetitions: reps,
            warmup: (reps / 10).max(2),
            sync_every: 1,
            pattern,
            direction: Direction::Exchange,
            clock: None,
        },
        replicas,
        threads,
    )
    .map_err(|e| CliError::input(format!("benchmark failed: {e}")))?;

    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    dist_io::save_table(&table, Path::new(out))
        .map_err(|e| CliError::input(format!("cannot write {out}: {e}")))?;

    let mut report = format!(
        "benchmarked {nodes}x{ppn} on {machine} ({} messages/size, pattern {:?})\n",
        res.by_size.first().map(|s| s.samples.len()).unwrap_or(0),
        pattern
    );
    for s in &res.by_size {
        report.push_str(&format!(
            "  {:>8} B: min {:>9.1}us avg {:>9.1}us max {:>10.1}us\n",
            s.size,
            s.summary.min().unwrap_or(0.0) * 1e6,
            s.summary.mean().unwrap_or(0.0) * 1e6,
            s.summary.max().unwrap_or(0.0) * 1e6,
        ));
    }
    if let Some(path) = trace_out {
        let traces = res.traces.as_deref().unwrap_or(&[]);
        let chrome = pevpm_mpisim::trace::chrome_trace(traces);
        write_text(path, &chrome.to_json())?;
        report.push_str(&format!(
            "benchmark trace ({} events, first replica) written to {path}\n",
            chrome.len()
        ));
    }
    if let Some(path) = metrics_out {
        let reg = Registry::new();
        reg.counter("bench.replicas").add(replicas as u64);
        for s in &res.by_size {
            reg.counter("bench.samples").add(s.samples.len() as u64);
            let lo = s.summary.min().unwrap_or(0.0) * 1e6;
            let hi = (s.summary.max().unwrap_or(0.0) * 1e6).max(lo + 1e-9);
            let h = reg.histogram(&format!("bench.latency_us.size_{}", s.size), lo, hi, 64);
            for &sample in &s.samples {
                h.record(sample * 1e6);
            }
        }
        write_text(path, &reg.to_json())?;
        report.push_str(&format!("benchmark metrics written to {path}\n"));
    }
    report.push_str(&format!("database written to {out}\n"));
    Ok(report)
}

/// Sampler-compilation options selected on the command line.
///
/// `--exact-quantiles` disables the fitted-distribution quantile LUT and
/// answers every inverse-CDF query by exact bisection — slower, but useful
/// to bound the LUT's (documented, <=0.1% relative) interpolation error.
fn compile_options(args: &Args) -> CompileOptions {
    CompileOptions {
        exact_quantiles: args.has("exact-quantiles"),
        ..CompileOptions::default()
    }
}

fn load_db(args: &Args) -> Result<DistTable, CliError> {
    let path = args.require("db")?;
    dist_io::load_table(Path::new(path))
        .map_err(|e| CliError::input(format!("cannot load {path}: {e}")))
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let table = load_db(args)?;
    let mut out = format!("{} entries\n", table.len());
    for (key, dist) in table.iter() {
        let kind = match dist {
            CommDist::Hist(h) => format!("hist[{} bins, {} samples]", h.num_bins(), h.total()),
            CommDist::Fit(f) => format!("fit[{:?}]", f.kind),
            CommDist::Point(_) => "point".to_string(),
        };
        out.push_str(&format!(
            "  {:<10} size {:>8} B  contention {:>4}  min {:>9.1}us  mean {:>9.1}us  {}\n",
            key.op.to_string(),
            key.size,
            key.contention,
            dist.min() * 1e6,
            dist.mean() * 1e6,
            kind
        ));
    }
    Ok(out)
}

fn cmd_fit(args: &Args) -> Result<String, CliError> {
    let table = load_db(args)?;
    let out_path = args.require("out")?;
    let fitted = table.fitted();
    let before = dist_io::write_table(&table).len();
    let after = dist_io::write_table(&fitted).len();
    dist_io::save_table(&fitted, Path::new(out_path))
        .map_err(|e| CliError::input(format!("cannot write {out_path}: {e}")))?;
    Ok(format!(
        "fitted {} entries: {} -> {} bytes ({:.1}x smaller), written to {out_path}\n",
        fitted.len(),
        before,
        after,
        before as f64 / after.max(1) as f64
    ))
}

fn describe_model(model: &pevpm::Model) -> String {
    fn walk(stmts: &[pevpm::Stmt], depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for s in stmts {
            match s {
                pevpm::Stmt::Loop { count, var, body } => {
                    out.push_str(&format!(
                        "{pad}Loop iterations = {count}{}\n",
                        var.as_ref()
                            .map(|v| format!(", var {v}"))
                            .unwrap_or_default()
                    ));
                    walk(body, depth + 1, out);
                }
                pevpm::Stmt::Runon { branches } => {
                    out.push_str(&format!("{pad}Runon ({} branches)\n", branches.len()));
                    for (cond, b) in branches {
                        out.push_str(&format!("{pad}  when {cond}\n"));
                        walk(b, depth + 2, out);
                    }
                }
                pevpm::Stmt::Message {
                    kind,
                    size,
                    from,
                    to,
                    handle,
                    label,
                } => {
                    out.push_str(&format!(
                        "{pad}Message {kind:?} size = {size}, {from} -> {to}{}{}\n",
                        handle
                            .as_ref()
                            .map(|h| format!(", handle {h}"))
                            .unwrap_or_default(),
                        label
                            .as_ref()
                            .map(|l| format!(" [{l}]"))
                            .unwrap_or_default()
                    ));
                }
                pevpm::Stmt::Wait { handle, .. } => {
                    out.push_str(&format!("{pad}Wait handle = {handle}\n"));
                }
                pevpm::Stmt::Serial { time, machine, .. } => {
                    out.push_str(&format!(
                        "{pad}Serial{} time = {time}\n",
                        machine
                            .as_ref()
                            .map(|m| format!(" on {m}"))
                            .unwrap_or_default()
                    ));
                }
                pevpm::Stmt::Collective { op, size, .. } => {
                    out.push_str(&format!("{pad}Collective {op:?} size = {size}\n"));
                }
            }
        }
    }
    let mut out = String::new();
    walk(&model.stmts, 0, &mut out);
    out
}

fn cmd_annotate(args: &Args) -> Result<String, CliError> {
    let Some(path) = args.positional().get(1) else {
        return err("usage: pevpm annotate FILE.c");
    };
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("cannot read {path}: {e}")))?;
    let model =
        pevpm::parse_annotations(&src).map_err(|e| CliError::input(format!("{path}: {e}")))?;
    Ok(format!(
        "{} directives, free parameters {:?}\n{}",
        model.num_stmts(),
        model.free_variables(),
        describe_model(&model)
    ))
}

/// Build a [`PredictRequest`] from `predict`/`client` flags. `src` is the
/// annotated source (already read from `--model`).
fn predict_request(args: &Args, src: String) -> Result<PredictRequest, CliError> {
    let procs: usize = args
        .require("procs")?
        .parse()
        .map_err(|_| CliError::usage("--procs must be an integer"))?;
    let mut req = PredictRequest::new(src, procs);
    req.mode = args.get("mode").unwrap_or("dist").to_string();
    req.pingpong = args.has("pingpong");
    req.exact_quantiles = args.has("exact-quantiles");
    req.seed = args.get_parsed("seed", 1)?;
    req.reps = args.get_parsed("reps", 1)?;
    req.threads = args.get_parsed("threads", 0)?;
    req.eval_threads = args.get_parsed("eval-threads", 0)?;
    for kv in args.values("param") {
        let Some((k, v)) = kv.split_once('=') else {
            return err(format!("--param expects k=v, got {kv:?}"));
        };
        let v: f64 = v
            .parse()
            .map_err(|_| CliError::usage(format!("--param {k}: bad number {v:?}")))?;
        req.params.push((k.to_string(), v));
    }
    if let Some(q) = args.get("quorum") {
        req.quorum = Some(
            q.parse()
                .map_err(|_| CliError::usage("--quorum must be an integer"))?,
        );
    }
    if let Some(s) = args.get("max-steps") {
        req.max_steps = Some(
            s.parse()
                .map_err(|_| CliError::usage("--max-steps must be an integer"))?,
        );
    }
    if let Some(s) = args.get("max-virtual-secs") {
        req.max_virtual_secs = Some(
            s.parse()
                .map_err(|_| CliError::usage("--max-virtual-secs must be a number"))?,
        );
    }
    if let Some(p) = args.get("precision") {
        req.precision = Some(
            p.parse()
                .map_err(|_| CliError::usage("--precision must be a number"))?,
        );
    }
    if let Some(n) = args.get("min-reps") {
        req.min_reps = Some(
            n.parse()
                .map_err(|_| CliError::usage("--min-reps must be an integer"))?,
        );
    }
    if let Some(n) = args.get("max-reps") {
        req.max_reps = Some(
            n.parse()
                .map_err(|_| CliError::usage("--max-reps must be an integer"))?,
        );
    }
    req.antithetic = args.has("antithetic");
    Ok(req)
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let table = load_db(args)?;
    let src = std::fs::read_to_string(model_path)
        .map_err(|e| CliError::input(format!("cannot read {model_path}: {e}")))?;
    let req = predict_request(args, src)?;

    // One-shot service-stage timing: a private telemetry hub — separate
    // from the --metrics-out engine registry, whose bytes must stay
    // unchanged — feeding the pid-4 "service stages" track in --trace-out.
    let telemetry = Telemetry::standalone();
    let mut timer = telemetry.begin("predict", true);
    timer.set_reps(req.reps);
    timer.set_quorum(req.quorum.is_some());

    let mode = timer.stage("validate", || req.prediction_mode())?;
    let model = timer.stage("model", || plan::parse_model(&req.model_src, model_path))?;
    let timing = timer.stage("compile", || {
        plan::build_timing(&table, mode, req.pingpong, req.compile_options())
    })?;

    let trace_out = args.get("trace-out");
    let metrics_out = args.get("metrics-out");
    let registry = metrics_out.map(|_| Arc::new(Registry::new()));

    let mut cfg = req.eval_config()?;
    if let Some(reg) = &registry {
        cfg = cfg.with_metrics(reg.clone());
    }
    if trace_out.is_some() {
        cfg = cfg.with_timeline();
    }

    // Write the sinks requested on the command line; returns report lines.
    let dump_sinks = |pred: Option<&pevpm::Prediction>,
                      span: &pevpm_obs::RequestSpan|
     -> Result<String, CliError> {
        let mut extra = String::new();
        if let (Some(path), Some(p)) = (trace_out, pred) {
            let mut chrome = pevpm::trace_export::chrome_trace(p);
            chrome.merge(pevpm_obs::span::chrome_service_track(span));
            write_text(path, &chrome.to_json())?;
            extra.push_str(&format!(
                "predicted timeline ({} spans, incl. service stages) written to {path}\n",
                chrome.len()
            ));
        }
        if let (Some(path), Some(reg)) = (metrics_out, &registry) {
            write_text(path, &reg.to_json())?;
            extra.push_str(&format!("engine metrics written to {path}\n"));
        }
        Ok(extra)
    };

    let effective_reps = req.effective_reps();
    if req.precision.is_some() {
        diag::info(&format!(
            "running adaptive Monte-Carlo replications (up to {effective_reps})..."
        ));
    } else if req.reps > 1 {
        diag::info(&format!("running {} Monte-Carlo replications...", req.reps));
    }
    let outcome = timer.stage("eval", || {
        plan::evaluate_plan(&model, &cfg, &timing, effective_reps)
    })?;
    match outcome {
        EvalOutcome::Batch(mc) => {
            if let Some(reg) = &registry {
                reg.counter("mc.replica_failures")
                    .add(mc.failures.len() as u64);
            }
            timer.set_replica_failures(mc.failures.len());
            let reps_run = mc.runs.len() + mc.failures.len();
            if let Some(a) = &mc.adaptive {
                timer.set_reps(a.reps);
                timer.set_reps_saved(a.reps_saved());
            }
            // The deterministic headline and failure lines are shared with
            // the daemon; the wall-clock statistics are one-shot-only.
            let mut out = timer.stage("render", || {
                let mut out = plan::render_mc_headline(&mc, req.procs);
                out.push_str(&plan::render_adaptive_line(&mc));
                out.push_str(&format!(
                    "{} replications in {:.3} s ({:.0} evals/s), range [{:.6}, {:.6}] s\n\
                     {} worker(s), {:.0}% busy, {} directives swept ({:.0}/replication)\n",
                    reps_run,
                    mc.wall_secs,
                    mc.evals_per_sec,
                    mc.min,
                    mc.max,
                    mc.profile.workers.len(),
                    mc.profile.utilization() * 100.0,
                    mc.total_steps(),
                    mc.mean_steps(),
                ));
                out.push_str(&plan::render_failures(&mc.failures));
                out
            });
            let span = timer.finish("ok", out.len());
            // The trace sink gets the first replication: its seed is the
            // one a `--reps 1` run with the same --seed would use.
            out.push_str(&dump_sinks(mc.runs.first(), &span)?);
            Ok(out)
        }
        EvalOutcome::Single(p) => {
            let mut out = timer.stage("render", || plan::render_single_report(&p));
            let span = timer.finish("ok", out.len());
            out.push_str(&dump_sinks(Some(&p), &span)?);
            Ok(out)
        }
    }
}

/// Parse the repeatable `--db [NAME=]PATH` table specs for `serve`.
/// A bare path loads as table `"default"`.
fn serve_tables(args: &Args) -> Result<Vec<(String, PathBuf)>, CliError> {
    let specs = args.values("db");
    if specs.is_empty() {
        return err("serve requires at least one --db [NAME=]DB.dist");
    }
    let mut tables = Vec::with_capacity(specs.len());
    for spec in specs {
        let (name, path) = match spec.split_once('=') {
            Some((name, path)) if !name.is_empty() && !path.is_empty() => (name, path),
            Some(_) => return err(format!("--db expects [NAME=]PATH, got {spec:?}")),
            None => ("default", spec.as_str()),
        };
        tables.push((name.to_string(), PathBuf::from(path)));
    }
    Ok(tables)
}

/// `pevpm serve`: run the prediction daemon until a `shutdown` request.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let cfg = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        tables: serve_tables(args)?,
        threads: args.get_parsed("threads", 0)?,
        eval_threads: args.get_parsed("eval-threads", 0)?,
        max_reps: args.get_parsed("max-reps", 0)?,
        max_steps: match args.get("max-steps") {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|_| CliError::usage("--max-steps must be an integer"))?,
            ),
        },
        max_virtual_secs: match args.get("max-virtual-secs") {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|_| CliError::usage("--max-virtual-secs must be a number"))?,
            ),
        },
        max_frame: pevpm_serve::proto::MAX_FRAME,
        http_addr: args.get("http").map(str::to_string),
        log_out: args.get("log-out").map(PathBuf::from),
        log_slow_ms: match args.get("log-slow-ms") {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|_| CliError::usage("--log-slow-ms must be a number"))?,
            ),
        },
        span_capacity: args
            .get_parsed("span-cap", pevpm_serve::telemetry::DEFAULT_SPAN_CAPACITY)?,
        conns: args.get_parsed("conns", 0)?,
        io_timeout_ms: args
            .get_parsed("io-timeout-ms", pevpm_serve::server::DEFAULT_IO_TIMEOUT_MS)?,
        inflight: args.get_parsed("inflight", 0)?,
        queue: match args.get("queue") {
            None => None,
            Some(s) => Some(
                s.parse()
                    .map_err(|_| CliError::usage("--queue must be an integer"))?,
            ),
        },
        shed_retry_ms: args
            .get_parsed("shed-retry-ms", pevpm_serve::server::DEFAULT_SHED_RETRY_MS)?,
        drain_ms: args.get_parsed("drain-ms", pevpm_serve::server::DEFAULT_DRAIN_MS)?,
    };
    let server = Server::bind(cfg).map_err(|e| CliError::input(e.to_string()))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::input(format!("cannot resolve bound address: {e}")))?;
    if let Some(path) = args.get("port-file") {
        // Line 1: the frame protocol address (what `client --port-file`
        // reads). Line 2, when the sidecar is up: the HTTP address.
        let mut contents = format!("{addr}\n");
        if let Some(http) = server.http_addr() {
            contents.push_str(&format!("{http}\n"));
        }
        write_text(path, &contents)?;
    }
    // SIGTERM lands as a graceful drain, same as a `shutdown` frame.
    sigterm::install();
    server
        .run_until(&sigterm::FLAG)
        .map_err(|e| CliError::input(format!("serve loop failed: {e}")))?;
    if let Some(path) = args.get("metrics-out") {
        write_text(path, &server.registry().to_json())?;
        diag::info(&format!("wrote server metrics to {path}"));
    }
    Ok(format!("pevpm serve: exited cleanly ({addr})\n"))
}

/// Resolve the daemon address for `client`: `--addr`, or the first line
/// of `--port-file` as written by `serve`.
fn client_addr(args: &Args) -> Result<String, CliError> {
    if let Some(addr) = args.get("addr") {
        return Ok(addr.to_string());
    }
    let Some(path) = args.get("port-file") else {
        return err("client requires --addr HOST:PORT or --port-file PATH");
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("cannot read {path}: {e}")))?;
    let addr = text.lines().next().unwrap_or("").trim();
    if addr.is_empty() {
        return Err(CliError::input(format!("{path}: empty port file")));
    }
    Ok(addr.to_string())
}

/// `pevpm client`: send predict/stats/shutdown requests to a daemon and
/// print one response JSON line per request.
fn cmd_client(args: &Args) -> Result<String, CliError> {
    let addr = client_addr(args)?;
    if args.get("model").is_none()
        && args.get("chaos").is_none()
        && !args.has("stats")
        && !args.has("ping")
        && !args.has("shutdown")
    {
        return err(
            "client needs something to send: --model FILE.c, --chaos MODE, \
             --stats, --ping or --shutdown",
        );
    }
    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_millis(args.get_parsed(
            "connect-timeout-ms",
            pevpm_serve::client::DEFAULT_CONNECT_TIMEOUT_MS,
        )?)),
        retries: args.get_parsed("retries", ClientConfig::default().retries)?,
        backoff_base_ms: args
            .get_parsed("retry-backoff-ms", ClientConfig::default().backoff_base_ms)?,
        ..ClientConfig::default()
    };
    if let Some(mode_arg) = args.get("chaos") {
        return run_chaos(&addr, mode_arg, args);
    }
    let mut client = Client::connect_with(&addr, &client_cfg)
        .map_err(|e| CliError::input(format!("cannot connect {addr}: {e}")))?;
    let io_err = |e: std::io::Error| CliError::input(format!("request to {addr} failed: {e}"));
    let mut out = String::new();
    if args.has("ping") {
        out.push_str(&client.ping("ping").map_err(io_err)?);
        out.push('\n');
    }
    if let Some(model_path) = args.get("model") {
        let src = std::fs::read_to_string(model_path)
            .map_err(|e| CliError::input(format!("cannot read {model_path}: {e}")))?;
        let req = predict_request(args, src)?;
        let table = args.get("table").unwrap_or("default").to_string();
        let batch: usize = args.get_parsed("batch", 1)?;
        let resp = if batch > 1 {
            let items: Vec<(String, PredictRequest)> =
                (0..batch).map(|_| (table.clone(), req.clone())).collect();
            client
                .batch_with("batch", &items, args.has("crn"))
                .map_err(io_err)?
        } else {
            client.predict("predict", &table, &req).map_err(io_err)?
        };
        out.push_str(&resp);
        out.push('\n');
    }
    if args.has("stats") {
        let stats = client.stats("stats").map_err(io_err)?;
        render_stage_latencies(&stats);
        out.push_str(&stats);
        out.push('\n');
    }
    if args.has("shutdown") {
        out.push_str(&client.shutdown("shutdown").map_err(io_err)?);
        out.push('\n');
    }
    Ok(out)
}

/// `pevpm client --chaos MODE|all`: run fault-injection modes against a
/// live daemon and print one report JSON line per mode. Exits non-zero
/// if any mode kills (or wedges) the daemon.
fn run_chaos(addr: &str, mode_arg: &str, args: &Args) -> Result<String, CliError> {
    let hint_ms: u64 =
        args.get_parsed("io-timeout-ms", pevpm_serve::server::DEFAULT_IO_TIMEOUT_MS)?;
    let modes: Vec<chaos::ChaosMode> = if mode_arg == "all" {
        chaos::ChaosMode::ALL.to_vec()
    } else {
        let mode = chaos::ChaosMode::parse(mode_arg).ok_or_else(|| {
            CliError::usage(format!(
                "--chaos expects all or one of: {}",
                chaos::ChaosMode::ALL.map(|m| m.name()).join(", ")
            ))
        })?;
        vec![mode]
    };
    let mut out = String::new();
    let mut casualties = Vec::new();
    for mode in modes {
        let report = chaos::run_mode(addr, mode, hint_ms).map_err(|e| {
            CliError::input(format!("chaos mode {} failed to run: {e}", mode.name()))
        })?;
        diag::info(&format!(
            "chaos {}: outcome={} survived={} ({:.1} ms)",
            report.mode.name(),
            report.outcome,
            report.survived,
            report.elapsed_ms
        ));
        if !report.survived {
            casualties.push(report.mode.name());
        }
        out.push_str(&report.to_json());
        out.push('\n');
    }
    if casualties.is_empty() {
        Ok(out)
    } else {
        Err(CliError::input(format!(
            "daemon did not survive chaos mode(s): {}",
            casualties.join(", ")
        )))
    }
}

/// Render the span-derived per-stage latency percentiles from a `stats`
/// response as a human-readable table on stderr, keeping stdout one
/// machine-parseable JSON line. Silently does nothing if the response
/// carries no stage data (old daemon, no requests served yet).
fn render_stage_latencies(stats_response: &str) {
    use pevpm_obs::json::{self, Json};
    let Some(stages) = json::parse(stats_response.trim())
        .ok()
        .and_then(|v| v.get("result").and_then(|r| r.get("stages")).cloned())
    else {
        return;
    };
    let Some(stages) = stages.as_object().filter(|m| !m.is_empty()).cloned() else {
        return;
    };
    diag::info(&format!(
        "{:>10} {:>8} {:>10} {:>10} {:>10}",
        "stage", "count", "p50(ms)", "p95(ms)", "p99(ms)"
    ));
    for (name, st) in &stages {
        let f = |k: &str| st.get(k).and_then(Json::as_num).unwrap_or(0.0);
        diag::info(&format!(
            "{name:>10} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            f("count") as u64,
            f("p50_ms"),
            f("p95_ms"),
            f("p99_ms"),
        ));
    }
}

/// `pevpm trace`: run the Jacobi example with measured tracing on, print
/// the per-rank breakdown, and optionally export predicted + measured
/// timelines as one Chrome trace.
fn cmd_trace(args: &Args) -> Result<String, CliError> {
    use pevpm_apps::jacobi::{self, JacobiConfig};

    let nodes: usize = args
        .require("nodes")?
        .parse()
        .map_err(|_| CliError::usage("--nodes must be an integer"))?;
    let ppn: usize = args.get_parsed("ppn", 1)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let machine = resolve_machine(args)?;
    let xsize: usize = args.get_parsed("xsize", 256)?;
    let iters: usize = args.get_parsed("iters", 50)?;
    let serial_ms: f64 = args.get_parsed("serial-ms", 3.24)?;
    let trace_out = args.get("trace-out");

    let nprocs = nodes * ppn;
    if nprocs == 0 || !xsize.is_multiple_of(nprocs.max(1)) {
        return err(format!(
            "--xsize {xsize} must be divisible by nodes*ppn = {nprocs}"
        ));
    }
    let jcfg = JacobiConfig {
        xsize,
        iterations: iters,
        serial_secs: serial_ms * 1e-3,
    };

    diag::info(&format!(
        "tracing {iters}-iteration Jacobi ({xsize}x{xsize}) on {nodes}x{ppn} {machine}"
    ));
    let world = WorldConfig {
        cluster: cluster_for(args, nodes)?,
        procs_per_node: ppn,
        placement: Placement::Block,
        protocol: ProtocolConfig::default(),
        seed,
        virtual_deadline: None,
        record_trace: true,
    };
    let measured = jacobi::run_measured(world, &jcfg)
        .map_err(|e| CliError::input(format!("measured run failed: {e}")))?;
    let traces = measured.report.traces.as_deref().unwrap_or(&[]);
    let breakdown = pevpm_mpisim::breakdown(traces);

    // Predicted counterpart: sample --db when given, else fall back to an
    // analytic Hockney model (Fast-Ethernet-era constants).
    let timing = match args.get("db") {
        Some(path) => TimingModel::distributions_with(
            dist_io::load_table(Path::new(path))
                .map_err(|e| CliError::input(format!("cannot load {path}: {e}")))?,
            compile_options(args),
        ),
        None => TimingModel::hockney(100e-6, 12.5e6),
    };
    let cfg = EvalConfig::new(nprocs).with_seed(seed).with_timeline();
    let pred = evaluate(&jacobi::model(&jcfg), &cfg, &timing).map_err(eval_error)?;

    let mut out = format!(
        "measured makespan:  {:.6} s over {nprocs} ranks ({} messages)\n\
         predicted makespan: {:.6} s ({})\n\n\
         per-rank breakdown (seconds):\n\
         {:>5} {:>10} {:>10} {:>10} {:>10} {:>8} {:>6}\n",
        measured.time,
        measured.report.messages,
        pred.makespan,
        if args.has("db") {
            "measured distributions"
        } else {
            "analytic Hockney model"
        },
        "rank",
        "compute",
        "send",
        "blocked",
        "coll",
        "msgs",
        "comm%",
    );
    for (r, b) in breakdown.iter().enumerate() {
        out.push_str(&format!(
            "{r:>5} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>8} {:>5.1}%\n",
            b.compute,
            b.send,
            b.blocked,
            b.collective,
            b.messages,
            b.comm_fraction() * 100.0,
        ));
    }

    if let Some(path) = trace_out {
        let mut chrome = pevpm::trace_export::chrome_trace(&pred);
        chrome.merge(pevpm_mpisim::trace::chrome_trace(traces));
        chrome.merge(pevpm_mpisim::fault_marks(&measured.report.fault_events));
        write_text(path, &chrome.to_json())?;
        out.push_str(&format!(
            "\nmerged predicted+measured trace ({} events) written to {path}\n\
             open in chrome://tracing or https://ui.perfetto.dev\n",
            chrome.len()
        ));
    }
    diag::debug(&format!("net stats: {:?}", measured.report.net_stats));
    Ok(out)
}

/// `pevpm fuzz`: differential conformance fuzzing of the PEVPM engine
/// against itself (bitwise) and against mpisim (statistically), plus
/// metamorphic and diagnostics oracles. See `pevpm-testkit` for the
/// oracle hierarchy; this command is a thin front-end over its
/// deterministic campaign driver.
fn cmd_fuzz(args: &Args) -> Result<String, CliError> {
    use pevpm_testkit::campaign::{self, CampaignConfig, Mode};
    use pevpm_testkit::Counterexample;

    let campaign_cfg = |mode: Mode| -> Result<CampaignConfig, CliError> {
        Ok(CampaignConfig {
            mode,
            programs: args.get_parsed("programs", 50)?,
            seed: args.get_parsed("seed", 2004)?,
            alpha: args.get_parsed("alpha", 1e-5)?,
            replications: args.get_parsed("reps", 3)?,
            ks_runs: args.get_parsed("ks-runs", 40)?,
            bench_reps: args.get_parsed("bench-reps", 40)?,
        })
    };

    // Replay one artifact under its recorded oracle.
    if let Some(path) = args.get("replay") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::input(format!("cannot read {path}: {e}")))?;
        let cx =
            Counterexample::parse(&text).map_err(|e| CliError::input(format!("{path}: {e}")))?;
        let cfg = campaign_cfg(Mode::Differential)?;
        return match campaign::replay(&cx, &cfg) {
            Err(f) => Err(CliError::input(format!(
                "counterexample reproduces (oracle {}, seed {}): {f}\n{}",
                cx.oracle,
                cx.seed,
                cx.render()
            ))),
            Ok(()) => Ok(format!(
                "counterexample did not reproduce (oracle {}, seed {}, {} directive(s))\n",
                cx.oracle,
                cx.seed,
                cx.program.directives()
            )),
        };
    }

    let modes: Vec<Mode> = match args.get("mode").unwrap_or("differential") {
        "all" => Mode::ALL.to_vec(),
        m => vec![Mode::from_name(m).ok_or_else(|| {
            CliError::usage(format!(
                "unknown mode {m:?} (differential|metamorphic|ks|diagnostics|dag|adaptive|all)"
            ))
        })?],
    };
    let out_dir = args.get("out");
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::input(format!("cannot create {dir}: {e}")))?;
    }

    let mut out = String::new();
    let mut total_failures = 0usize;
    for mode in modes {
        let cfg = campaign_cfg(mode)?;
        diag::info(&format!(
            "fuzzing {} programs under the {mode} oracle (seed {})...",
            cfg.programs, cfg.seed
        ));
        let res = campaign::run_campaign(&cfg);
        out.push_str(&format!(
            "{mode}: {} program(s), {} directive(s), {} counterexample(s)\n",
            res.programs,
            res.directives,
            res.failures.len()
        ));
        for cx in &res.failures {
            total_failures += 1;
            out.push_str(&format!(
                "  seed {}: {} ({} directive(s), shrunk from {})\n",
                cx.seed,
                cx.failure,
                cx.program.directives(),
                cx.original_directives
            ));
            if let Some(dir) = out_dir {
                let path = Path::new(dir).join(cx.file_name());
                std::fs::write(&path, cx.render()).map_err(|e| {
                    CliError::input(format!("cannot write {}: {e}", path.display()))
                })?;
                out.push_str(&format!("  artifact written to {}\n", path.display()));
            } else {
                out.push_str(&cx.render());
            }
        }
    }
    if total_failures > 0 {
        return Err(CliError::input(format!(
            "{out}{total_failures} counterexample(s) found"
        )));
    }
    out.push_str("ok — all oracles passed\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(s: &str) -> Result<String, CliError> {
        run(s.split_whitespace().map(String::from).collect())
    }

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pevpm_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cmd("help").unwrap().contains("USAGE"));
        assert!(run_cmd("frobnicate").is_err());
        assert!(run(vec![]).is_err());
    }

    #[test]
    fn bench_inspect_fit_predict_pipeline() {
        let dir = tmpdir();
        let db = dir.join("db.dist");
        let fitted = dir.join("fitted.dist");
        let model = dir.join("pingpong.c");

        // bench
        let out = run_cmd(&format!(
            "bench --nodes 4 --ppn 1 --sizes 512,1024 --reps 15 --seed 3 --out {}",
            db.display()
        ))
        .unwrap();
        assert!(out.contains("database written"), "{out}");
        assert!(db.exists());

        // inspect
        let out = run_cmd(&format!("inspect --db {}", db.display())).unwrap();
        assert!(out.contains("2 entries"), "{out}");
        assert!(out.contains("hist["), "{out}");

        // fit
        let out = run_cmd(&format!(
            "fit --db {} --out {}",
            db.display(),
            fitted.display()
        ))
        .unwrap();
        assert!(out.contains("smaller"), "{out}");

        // annotate + predict
        std::fs::write(
            &model,
            "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
",
        )
        .unwrap();
        let out = run_cmd(&format!("annotate {}", model.display())).unwrap();
        assert!(out.contains("free parameters [\"rounds\"]"), "{out}");

        for mode in ["dist", "avg", "min"] {
            let out = run_cmd(&format!(
                "predict --model {} --db {} --procs 2 --mode {mode} --param rounds=20",
                model.display(),
                db.display()
            ))
            .unwrap();
            assert!(out.contains("predicted makespan"), "{out}");
        }
        // Monte-Carlo batch over threads.
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --reps 8 --threads 2 --param rounds=20",
            model.display(),
            db.display()
        ))
        .unwrap();
        assert!(out.contains("8 replications"), "{out}");
        assert!(out.contains("stderr"), "{out}");

        // Fitted database predicts too, with and without the quantile LUT.
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --param rounds=20",
            model.display(),
            fitted.display()
        ))
        .unwrap();
        assert!(out.contains("predicted makespan"), "{out}");
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --param rounds=20 --exact-quantiles",
            model.display(),
            fitted.display()
        ))
        .unwrap();
        assert!(out.contains("predicted makespan"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_subcommand_and_sinks() {
        let dir = tmpdir();
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let db = dir.join("trace_db.dist");
        let model = dir.join("trace_pp.c");

        // trace: breakdown table + merged predicted/measured Chrome JSON.
        let out = run_cmd(&format!(
            "trace --nodes 4 --xsize 64 --iters 10 --trace-out {}",
            trace.display()
        ))
        .unwrap();
        assert!(out.contains("measured makespan"), "{out}");
        assert!(out.contains("predicted makespan"), "{out}");
        assert!(out.contains("comm%"), "{out}");
        let js = std::fs::read_to_string(&trace).unwrap();
        let n = pevpm_obs::chrome::validate(&js).expect("schema-valid trace");
        assert!(n > 0, "trace has complete events");
        assert!(js.contains("PEVPM predicted"), "both pids present");
        assert!(js.contains("mpisim measured"), "both pids present");

        // predict --trace-out/--metrics-out on a tiny model.
        std::fs::write(
            &model,
            "\
// PEVPM Loop iterations = 5
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
",
        )
        .unwrap();
        run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 10 --out {}",
            db.display()
        ))
        .unwrap();
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --trace-out {} --metrics-out {}",
            model.display(),
            db.display(),
            trace.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(out.contains("predicted timeline"), "{out}");
        assert!(out.contains("engine metrics"), "{out}");
        let js = std::fs::read_to_string(&trace).unwrap();
        assert!(pevpm_obs::chrome::validate(&js).unwrap() > 0);
        let mj = pevpm_obs::json::parse(&std::fs::read_to_string(&metrics).unwrap())
            .expect("metrics JSON parses");
        let hists = mj.get("histograms").and_then(|h| h.as_object()).unwrap();
        assert!(hists.contains_key("vm.contention_at_injection"));
        assert!(hists.contains_key("vm.scoreboard_occupancy"));

        // Monte-Carlo predict still writes the sinks (first replication).
        let out = run_cmd(&format!(
            "predict --model {} --db {} --procs 2 --reps 3 --trace-out {}",
            model.display(),
            db.display(),
            trace.display()
        ))
        .unwrap();
        assert!(out.contains("3 replications"), "{out}");
        assert!(out.contains("worker(s)"), "{out}");
        assert!(out.contains("predicted timeline"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_verbosity_flags_are_accepted() {
        // -q / -v map to --quiet / --verbose rather than being rejected or
        // swallowed as positionals. (The verbosity level itself is global
        // process state, so it is not asserted here — tests run in
        // parallel.)
        assert!(run_cmd("help -q").unwrap().contains("USAGE"));
        assert!(run_cmd("help -v").unwrap().contains("USAGE"));
    }

    #[test]
    fn predict_rejects_bad_inputs() {
        assert!(run_cmd("predict --procs 2 --db nope.dist").is_err()); // missing --model
        assert!(run_cmd("predict --model x.c --procs 2 --db /no/such.dist").is_err());
        assert!(run_cmd("bench --out /tmp/x.dist").is_err()); // missing --nodes
        assert!(run_cmd("bench --nodes 2 --machine warp --out /tmp/x.dist").is_err());
        assert!(run_cmd("annotate").is_err());
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        // usage: missing flags, unknown command, unknown machine.
        assert_eq!(run_cmd("frobnicate").unwrap_err().code, EXIT_USAGE);
        assert_eq!(
            run_cmd("bench --out /tmp/x.dist").unwrap_err().code,
            EXIT_USAGE
        );
        assert_eq!(
            run_cmd("bench --nodes 2 --machine warp --out /tmp/x.dist")
                .unwrap_err()
                .code,
            EXIT_USAGE
        );
        // input: unreadable files.
        assert_eq!(
            run_cmd("inspect --db /no/such.dist").unwrap_err().code,
            EXIT_INPUT
        );
        assert_eq!(
            run_cmd("predict --model /no/such.c --procs 2 --db /no/such.dist")
                .unwrap_err()
                .code,
            EXIT_INPUT
        );
    }

    #[test]
    fn unknown_machine_lists_valid_machines() {
        let e = run_cmd("bench --nodes 2 --machine warp --out /tmp/x.dist").unwrap_err();
        for m in MACHINES {
            assert!(e.message.contains(m), "{} missing from: {e}", m);
        }
    }

    #[test]
    fn deadlocked_model_exits_with_budget_code() {
        let dir = tmpdir();
        let db = dir.join("dl_db.dist");
        let model = dir.join("deadlock.c");
        run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 10 --out {}",
            db.display()
        ))
        .unwrap();
        // Both procs receive, nobody sends.
        std::fs::write(
            &model,
            "\
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 1
// PEVPM &       to = 0
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
",
        )
        .unwrap();
        let e = run_cmd(&format!(
            "predict --model {} --db {} --procs 2",
            model.display(),
            db.display()
        ))
        .unwrap_err();
        assert_eq!(e.code, EXIT_BUDGET, "{e}");
        assert!(e.message.contains("deadlock at t="), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quorum_partial_failures_reach_report_and_metrics() {
        let dir = tmpdir();
        let db = dir.join("quorum_db.dist");
        let model = dir.join("quorum_model.c");
        let metrics = dir.join("quorum_metrics.json");

        // A hand-written table with a *wide* send-latency histogram:
        // per-replication makespans spread over ~[1, 3] s, so a
        // virtual-time budget between the observed extremes fails some
        // replications and not others — deterministically, given --seed.
        let samples: Vec<f64> = (0..40).map(|i| 1.0 + 0.05 * i as f64).collect();
        let mut table = DistTable::new();
        table.insert(
            pevpm_dist::DistKey {
                op: Op::Send,
                size: 1024,
                contention: 1,
            },
            CommDist::Hist(pevpm_dist::Histogram::from_samples(&samples, 0.1)),
        );
        std::fs::write(&db, dist_io::write_table(&table)).unwrap();
        std::fs::write(
            &model,
            "\
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
",
        )
        .unwrap();

        let base = format!(
            "predict --model {} --db {} --procs 2 --reps 16 --seed 9",
            model.display(),
            db.display()
        );
        let out = run_cmd(&base).unwrap();
        let range = out
            .lines()
            .find_map(|l| l.split("range [").nth(1))
            .unwrap_or_else(|| panic!("no range in {out}"));
        let (lo, hi) = range
            .trim_end_matches(|c| c != ']')
            .trim_end_matches(']')
            .trim_end_matches(" s")
            .split_once(", ")
            .unwrap();
        let (lo, hi): (f64, f64) = (lo.parse().unwrap(), hi.parse().unwrap());
        assert!(hi > lo, "jitter must spread the makespans: [{lo}, {hi}]");
        let threshold = (lo + hi) / 2.0;

        // Without a quorum, the budget kills the whole batch (exit 4).
        let e = run_cmd(&format!("{base} --max-virtual-secs {threshold}")).unwrap_err();
        assert_eq!(e.code, EXIT_BUDGET, "{e}");
        assert!(e.message.contains("budget exceeded"), "{e}");

        // With --quorum 1 the batch completes, the report lists the
        // failed replications, and the count reaches --metrics-out.
        let out = run_cmd(&format!(
            "{base} --max-virtual-secs {threshold} --quorum 1 --metrics-out {}",
            metrics.display()
        ))
        .unwrap();
        assert!(out.contains("predicted makespan"), "{out}");
        assert!(out.contains("replication(s) failed (quorum met"), "{out}");
        assert!(out.contains("budget exceeded"), "{out}");
        let mj = pevpm_obs::json::parse(&std::fs::read_to_string(&metrics).unwrap())
            .expect("metrics JSON parses");
        let failed = mj
            .get("counters")
            .and_then(|c| c.as_object())
            .and_then(|c| c.get("mc.replica_failures"))
            .and_then(|v| v.as_num())
            .unwrap_or_else(|| panic!("mc.replica_failures missing from {mj:?}"));
        assert!(
            (1.0..=15.0).contains(&failed),
            "a strict-interior budget fails some but not all of 16 replications, got {failed}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fuzz_smoke_flags_and_replay() {
        // A tiny clean campaign passes and says so.
        let out = run_cmd("fuzz --mode differential --programs 5 --seed 11").unwrap();
        assert!(out.contains("differential: 5 program(s)"), "{out}");
        assert!(out.contains("0 counterexample(s)"), "{out}");
        assert!(out.contains("ok — all oracles passed"), "{out}");

        // Flag errors follow the exit-code contract.
        assert_eq!(run_cmd("fuzz --mode bogus").unwrap_err().code, EXIT_USAGE);
        assert_eq!(
            run_cmd("fuzz --replay /no/such.model").unwrap_err().code,
            EXIT_INPUT
        );

        // A non-artifact file is an input error naming the header.
        let dir = tmpdir();
        let bogus = dir.join("bogus.model");
        std::fs::write(&bogus, "hello\n").unwrap();
        let e = run_cmd(&format!("fuzz --replay {}", bogus.display())).unwrap_err();
        assert_eq!(e.code, EXIT_INPUT);
        assert!(e.message.contains("not a counterexample artifact"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// End-to-end daemon lifecycle over a real socket: serve, predict
    /// (cold, warm, batched — byte-identical), stats counters, shutdown.
    #[test]
    fn serve_and_client_round_trip_deterministically() {
        use pevpm_obs::json::{self, Json};

        let dir = tmpdir();
        let db = dir.join("serve_db.dist");
        let model = dir.join("serve_model.c");
        let port_file = dir.join("serve_port");
        run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --out {}",
            db.display()
        ))
        .unwrap();
        std::fs::write(
            &model,
            "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
",
        )
        .unwrap();

        let metrics = dir.join("serve_metrics.json");
        let serve_cmd = format!(
            "serve --db {} --threads 2 --port-file {} --metrics-out {} -q",
            db.display(),
            port_file.display(),
            metrics.display()
        );
        let daemon = std::thread::spawn(move || run_cmd(&serve_cmd));
        for _ in 0..500 {
            if port_file.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(port_file.exists(), "daemon never wrote its port file");

        let predict_flags = format!(
            "--model {} --procs 2 --param rounds=20 --reps 4 --seed 3",
            model.display()
        );
        let client_base = format!("client --port-file {}", port_file.display());

        // Cold then warm: byte-identical responses.
        let cold = run_cmd(&format!("{client_base} {predict_flags}")).unwrap();
        let warm = run_cmd(&format!("{client_base} {predict_flags}")).unwrap();
        assert_eq!(cold, warm, "cache temperature must not change the bytes");
        let v = json::parse(cold.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{cold}");
        let result = v.get("result").unwrap().clone();

        // Batched with identical items: every item bitwise equals the
        // lone response's result.
        let batched = run_cmd(&format!("{client_base} {predict_flags} --batch 3")).unwrap();
        let bv = json::parse(batched.trim()).unwrap();
        let items = bv.get("result").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 3);
        for item in items {
            assert_eq!(item.get("result"), Some(&result), "{batched}");
        }

        // The daemon's deterministic report equals the one-shot CLI's
        // deterministic headline for the same request.
        let oneshot = run_cmd(&format!(
            "predict --db {} {predict_flags} --threads 2",
            db.display()
        ))
        .unwrap();
        let report = result.get("report").and_then(Json::as_str).unwrap();
        assert!(
            oneshot.starts_with(report),
            "daemon report {report:?} is not a prefix of one-shot output {oneshot:?}"
        );

        // Stats: 6 predictions (1 + 1 + 3 batch items + the one-shot
        // doesn't count) hit exactly one table compile and one model parse.
        let stats = run_cmd(&format!("{client_base} --stats")).unwrap();
        let sv = json::parse(stats.trim()).unwrap();
        let counters = sv
            .get("result")
            .and_then(|r| r.get("counters"))
            .and_then(Json::as_object)
            .unwrap()
            .clone();
        assert_eq!(
            counters.get("serve.table_compiles").and_then(Json::as_num),
            Some(1.0),
            "{stats}"
        );
        assert_eq!(
            counters.get("serve.model_compiles").and_then(Json::as_num),
            Some(1.0),
            "{stats}"
        );

        // Shutdown lets the serve thread exit cleanly.
        let bye = run_cmd(&format!("{client_base} --shutdown")).unwrap();
        assert!(bye.contains("\"ok\":true"), "{bye}");
        let served = daemon.join().unwrap().unwrap();
        assert!(served.contains("exited cleanly"), "{served}");

        // --metrics-out dumped the same registry the stats request served:
        // the golden serve counters survive to disk.
        let mj = json::parse(&std::fs::read_to_string(&metrics).unwrap())
            .expect("serve metrics JSON parses");
        let disk = mj
            .get("counters")
            .and_then(Json::as_object)
            .unwrap()
            .clone();
        for key in [
            "serve.requests",
            "serve.table_compiles",
            "serve.model_compiles",
            "serve.model_cache_hits",
        ] {
            assert!(disk.contains_key(key), "{key} missing from {mj:?}");
        }
        assert_eq!(
            disk.get("serve.table_compiles").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            disk.get("serve.model_compiles").and_then(Json::as_num),
            Some(1.0)
        );
        // cold predict + warm predict + batch + stats + shutdown = 5 frames.
        assert_eq!(disk.get("serve.requests").and_then(Json::as_num), Some(5.0));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_client_flag_validation() {
        assert_eq!(run_cmd("serve").unwrap_err().code, EXIT_USAGE);
        assert_eq!(run_cmd("serve --db =x").unwrap_err().code, EXIT_USAGE);
        assert_eq!(
            run_cmd("serve --db /no/such.dist").unwrap_err().code,
            EXIT_INPUT
        );
        assert_eq!(run_cmd("client --stats").unwrap_err().code, EXIT_USAGE);
        assert_eq!(
            run_cmd("client --addr 127.0.0.1:9").unwrap_err().code,
            EXIT_USAGE,
            "nothing to send is a usage error before connecting"
        );
        assert_eq!(
            run_cmd("client --port-file /no/such.port --stats")
                .unwrap_err()
                .code,
            EXIT_INPUT
        );
        assert_eq!(
            run_cmd("client --addr 127.0.0.1:9 --chaos frobnicate")
                .unwrap_err()
                .code,
            EXIT_USAGE,
            "unknown chaos modes are rejected before connecting"
        );
        assert_eq!(
            run_cmd("serve --db x.dist --queue nope").unwrap_err().code,
            EXIT_USAGE
        );
    }

    /// Satellite: a blackholed (or refused) address must fail fast with
    /// the exit-code contract's input error, not hang the CLI.
    #[test]
    fn client_connect_timeout_fails_fast() {
        let t0 = std::time::Instant::now();
        // TEST-NET-1 (RFC 5737): never routable. Depending on the
        // sandbox this is a fast unreachable error or a timeout; both
        // must surface as EXIT_INPUT well inside the flag's budget.
        let e = run_cmd("client --addr 192.0.2.1:9 --ping --connect-timeout-ms 300 --retries 0")
            .unwrap_err();
        assert_eq!(e.code, EXIT_INPUT, "{e}");
        // Whether the environment refuses, blackholes, or proxies the
        // address, the failure names it and maps to the input class.
        assert!(e.message.contains("192.0.2.1"), "{e}");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "connect took {:?} despite a 300 ms budget",
            t0.elapsed()
        );
    }

    #[test]
    fn faults_flag_loads_validates_and_degrades() {
        let dir = tmpdir();
        let db = dir.join("faults_db.dist");
        let plan = dir.join("plan.toml");

        // Unreadable and invalid plans are input errors naming the file.
        let e = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 10 --faults /no/plan.toml --out {}",
            db.display()
        ))
        .unwrap_err();
        assert_eq!(e.code, EXIT_INPUT);
        assert!(e.message.contains("/no/plan.toml"), "{e}");

        std::fs::write(&plan, "loss_prob = 1.5\n").unwrap();
        let e = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 10 --faults {} --out {}",
            plan.display(),
            db.display()
        ))
        .unwrap_err();
        assert_eq!(e.code, EXIT_INPUT);
        assert!(e.message.contains("plan.toml"), "{e}");
        assert!(e.message.contains("loss_prob"), "{e}");

        // A node index out of range for the machine is caught up front.
        std::fs::write(&plan, "[[degrade]]\nnode = 99\nrate_factor = 0.5\n").unwrap();
        let e = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 10 --faults {} --out {}",
            plan.display(),
            db.display()
        ))
        .unwrap_err();
        assert_eq!(e.code, EXIT_INPUT, "{e}");

        // A valid lossy plan runs and degrades the measured latencies.
        let clean = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --out {}",
            db.display()
        ))
        .unwrap();
        std::fs::write(&plan, "loss_prob = 0.05\n").unwrap();
        let lossy = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --faults {} --out {}",
            plan.display(),
            db.display()
        ))
        .unwrap();
        let max_us = |out: &str| -> f64 {
            let line = out.lines().find(|l| l.contains("1024 B:")).unwrap();
            let max = line.split("max").nth(1).unwrap();
            max.trim().trim_end_matches("us").trim().parse().unwrap()
        };
        assert!(
            max_us(&lossy) > max_us(&clean),
            "5% frame loss must inflate the max latency: clean {clean} lossy {lossy}"
        );

        // An empty plan is accepted (and is a no-op by the determinism
        // property test's guarantee).
        std::fs::write(&plan, "# no faults\n").unwrap();
        let out = run_cmd(&format!(
            "bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --faults {} --out {}",
            plan.display(),
            db.display()
        ))
        .unwrap();
        assert_eq!(max_us(&out), max_us(&clean), "empty plan is a no-op");

        std::fs::remove_dir_all(&dir).ok();
    }
}
