//! The `pevpm` binary: thin shell over [`pevpm_cli::run`].
//!
//! Exit codes follow the documented contract: 0 success, 2 usage error,
//! 3 input/model error, 4 budget exceeded or deadlock.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match pevpm_cli::run(tokens) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
