//! The `pevpm` binary: thin shell over [`pevpm_cli::run`].

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match pevpm_cli::run(tokens) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
