//! Tiny dependency-free command-line argument parsing.
//!
//! Supports `--flag value` options (repeatable), `--flag=value`, and bare
//! positional arguments. Only what the `pevpm` binary needs.

use std::collections::HashMap;

/// Parsed arguments: options (last value wins unless read with
/// [`Args::values`]) and positionals, in order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    opts: HashMap<String, Vec<String>>,
    positional: Vec<String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw token list (without the program name). Options in
    /// `bool_flags` never consume a following token (they are recorded as
    /// `"true"`); all other `--key` options take the next token (or an
    /// inline `=value`) as their value.
    pub fn parse_with_flags<I: IntoIterator<Item = String>>(
        tokens: I,
        bool_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(rest) = tok.strip_prefix("--") {
                if rest.is_empty() {
                    return Err(ArgError("bare '--' is not supported".into()));
                }
                let (key, inline) = match rest.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (rest.to_string(), None),
                };
                let value = match inline {
                    Some(v) => v,
                    None if bool_flags.contains(&key.as_str()) => "true".to_string(),
                    None => match iter.next_if(|next| !next.starts_with("--")) {
                        Some(next) => next,
                        // A trailing option with no value acts as a flag.
                        None => "true".to_string(),
                    },
                };
                args.opts.entry(key).or_default().push(value);
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// [`Args::parse_with_flags`] with no declared boolean flags.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        Self::parse_with_flags(tokens, &[])
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Last value of an option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts
            .get(key)
            .and_then(|v| v.last())
            .map(|s| s.as_str())
    }

    /// All values of a repeatable option.
    pub fn values(&self, key: &str) -> &[String] {
        self.opts.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.opts.contains_key(key)
    }

    /// Required option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    /// Comma-separated list option, e.g. `--sizes 512,1024`.
    pub fn get_list<T: std::str::FromStr>(
        &self,
        key: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("invalid element in --{key}: {s:?}")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn options_and_positionals() {
        let a = parse("bench --nodes 8 --ppn 2 file.c");
        assert_eq!(a.positional(), &["bench".to_string(), "file.c".to_string()]);
        assert_eq!(a.get("nodes"), Some("8"));
        assert_eq!(a.get("ppn"), Some("2"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn equals_syntax_and_flags() {
        let a = Args::parse_with_flags(
            "--out=db.dist --verbose run"
                .split_whitespace()
                .map(String::from),
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.get("out"), Some("db.dist"));
        assert_eq!(a.get("verbose"), Some("true"));
        assert!(a.has("verbose"));
        assert_eq!(a.positional(), &["run".to_string()]);
        // Without the declaration, the next token is consumed as a value.
        let b = parse("--verbose run");
        assert_eq!(b.get("verbose"), Some("run"));
    }

    #[test]
    fn repeatable_options() {
        let a = parse("--param a=1 --param b=2");
        assert_eq!(a.values("param"), &["a=1".to_string(), "b=2".to_string()]);
        assert_eq!(a.get("param"), Some("b=2"), "get returns the last");
    }

    #[test]
    fn typed_and_list_access() {
        let a = parse("--reps 50 --sizes 512,1024,2048");
        assert_eq!(a.get_parsed("reps", 0usize).unwrap(), 50);
        assert_eq!(a.get_parsed("seed", 7u64).unwrap(), 7);
        assert_eq!(
            a.get_list::<u64>("sizes", vec![]).unwrap(),
            vec![512, 1024, 2048]
        );
        assert!(a.get_parsed::<usize>("sizes", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse("bench");
        assert!(a.require("db").is_err());
        assert!(parse("--db x").require("db").is_ok());
    }
}
