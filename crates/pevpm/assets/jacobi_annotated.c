/* Skeleton code for the Jacobi Iteration with PEVPM annotations,
 * transcribed from Figure 5 of Grove & Coddington, "Communication
 * Benchmarking and Performance Modelling of MPI Programs on Cluster
 * Computers". The `iterations` count is left symbolic so models can be
 * evaluated for any run length. */

int i, j, k, procnum, numprocs;
int xsize = 256; int ysize = 256/numprocs+2;
float grid[size][size]; float griddash[size][size];

MPI_Comm_rank(MPI_COMM_WORLD, &procnum);
MPI_Comm_size(MPI_COMM_WORLD, &numprocs);

// PEVPM Loop iterations = iterations
// PEVPM {
  for (i = 0; i < iterations; i++){
// PEVPM Runon c1 = procnum%2 == 0
// PEVPM &     c2 = procnum%2 != 0
// PEVPM {
    if (procnum%2 == 0){
// PEVPM Runon c1 = procnum != 0
// PEVPM {
      if (procnum != 0){
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
        MPI_Send(grid[1], xsize, MPI_FLOAT, procnum-1, 0, MPI_COMM_WORLD);
      }
// PEVPM }
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
      MPI_Send(grid[ysize-2], xsize, MPI_FLOAT, procnum+1, 0, MPI_COMM_WORLD);
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
      MPI_Recv(grid[ysize-1], xsize, MPI_FLOAT, procnum+1, 0, MPI_COMM_WORLD, 0);
// PEVPM Runon c1 = procnum != 0
// PEVPM {
      if (procnum != 0){
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
        MPI_Recv(grid[0], xsize, MPI_FLOAT, procnum-1, 0, MPI_COMM_WORLD, 0);
      }
// PEVPM }
// PEVPM }
// PEVPM {
    else{
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
      if (procnum != (numprocs-1)){
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
        MPI_Recv(grid[ysize-1], xsize, MPI_FLOAT, procnum+1, 0, MPI_COMM_WORLD, 0);
      }
// PEVPM }
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
      MPI_Recv(grid[0], xsize, MPI_FLOAT, procnum-1, 0, MPI_COMM_WORLD, 0);
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
      MPI_Send(grid[1], xsize, MPI_FLOAT, procnum-1, 0, MPI_COMM_WORLD);
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
      if (procnum != (numprocs-1)){
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
        MPI_Send(grid[ysize-2], xsize, MPI_FLOAT, procnum+1, 0, MPI_COMM_WORLD);
      }
// PEVPM }
    }
// PEVPM }
// PEVPM Serial on perseus time = 3.24/numprocs
    for(j = 1; j < ysize-1; j++){
      for(k = 1; k < xsize-1; k++){
        griddash[j][k]=0.25*
          (grid[j][k-1]+grid[j-1][k]+grid[j][k+1]+grid[j+1][k]);
      }
    }
    swap_ptr(grid, griddash);
  }
// PEVPM }
