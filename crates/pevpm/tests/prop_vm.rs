//! Property-based tests of the PEVPM virtual machine: structural
//! invariants of evaluation over randomly generated (but well-formed)
//! models.

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Op};
use proptest::prelude::*;

fn point_timing(t: f64) -> TimingModel {
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Point(t),
            );
        }
    }
    TimingModel::distributions(table)
}

/// A ring-shift model: every proc sends `size` bytes right and receives
/// from the left, `laps` times, with `work` seconds of compute per lap —
/// deadlock-free for any nprocs ≥ 2 because the sends are nonblocking.
fn ring_model(laps: u64, size: u64, work: f64) -> Model {
    Model::new()
        .with_param("laps", laps as f64)
        .with_param("size", size as f64)
        .with_param("work", work)
        .with_stmt(looped(
            "laps",
            vec![
                Stmt::Message {
                    kind: pevpm::MsgKind::Isend,
                    size: e("size"),
                    from: e("procnum"),
                    to: e("(procnum + 1) % numprocs"),
                    handle: None,
                    label: None,
                },
                recv("size", "(procnum - 1) % numprocs", "procnum"),
                serial("work"),
            ],
        ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ring models always evaluate; the makespan is bounded below by the
    /// per-proc serial work and by the communication chain, and it is
    /// monotone in the lap count.
    #[test]
    fn ring_models_evaluate_with_sane_bounds(
        laps in 1u64..20,
        size in 1u64..100_000,
        work_us in 0u64..5_000,
        nprocs in 2usize..9,
        comm_us in 1u64..2_000,
    ) {
        let work = work_us as f64 * 1e-6;
        let comm = comm_us as f64 * 1e-6;
        let m = ring_model(laps, size, work);
        let p = evaluate(&m, &EvalConfig::new(nprocs), &point_timing(comm)).unwrap();
        // Lower bound: each proc does `laps` serial segments, and each lap
        // contains at least one message wait of `comm` from the previous
        // lap's chain... conservatively just the serial part plus one comm.
        let floor = laps as f64 * work;
        prop_assert!(p.makespan + 1e-12 >= floor, "makespan {} < floor {floor}", p.makespan);
        prop_assert_eq!(p.messages, laps * nprocs as u64);
        prop_assert!(p.races.is_empty());
        prop_assert!(p.finish_times.iter().all(|t| *t <= p.makespan + 1e-15));

        // Monotonicity in laps.
        let p2 = evaluate(
            &ring_model(laps + 1, size, work),
            &EvalConfig::new(nprocs),
            &point_timing(comm),
        )
        .unwrap();
        prop_assert!(p2.makespan >= p.makespan);
    }

    /// Evaluation is deterministic per seed for histogram-backed timing,
    /// and different seeds give different (but bounded) results.
    #[test]
    fn evaluation_deterministic_per_seed(
        laps in 1u64..10,
        nprocs in 2usize..6,
        seed in 0u64..100,
    ) {
        let samples: Vec<f64> = (0..200).map(|i| 1e-4 + (i % 37) as f64 * 1e-6).collect();
        let mut table = DistTable::new();
        table.insert(
            DistKey { op: Op::Send, size: 1024, contention: 1 },
            CommDist::Hist(pevpm_dist::Histogram::from_samples(&samples, 1e-6)),
        );
        let timing = TimingModel::distributions(table);
        let m = ring_model(laps, 1024, 0.0);
        let run = |s: u64| {
            evaluate(&m, &EvalConfig::new(nprocs).with_seed(s), &timing)
                .unwrap()
                .makespan
        };
        prop_assert_eq!(run(seed), run(seed));
        // Sampled makespans stay within the distribution's support bounds
        // per hop: laps chained hops of at most max-sample each... loose
        // upper bound: laps * nprocs hops of the max sample.
        let max_hop = 1e-4 + 36.0 * 1e-6;
        let bound = (laps * nprocs as u64) as f64 * (max_hop + 1.0e-4) + 1.0;
        prop_assert!(run(seed) < bound);
    }

    /// Runon partitions: a model whose branches split procs into two
    /// groups with pure serial work gives each group exactly its own
    /// work — branches never leak across procs.
    #[test]
    fn runon_partitions_are_exact(
        split in 1usize..7,
        nprocs in 2usize..8,
        wa_us in 1u64..1_000,
        wb_us in 1u64..1_000,
    ) {
        let split = split.min(nprocs - 1);
        let wa = wa_us as f64 * 1e-6;
        let wb = wb_us as f64 * 1e-6;
        let m = Model::new()
            .with_param("split", split as f64)
            .with_param("wa", wa)
            .with_param("wb", wb)
            .with_stmt(runon2(
                "procnum < split",
                vec![serial("wa")],
                "procnum >= split",
                vec![serial("wb")],
            ));
        let p = evaluate(&m, &EvalConfig::new(nprocs), &point_timing(1e-6)).unwrap();
        for (i, &t) in p.finish_times.iter().enumerate() {
            let expect = if i < split { wa } else { wb };
            prop_assert!((t - expect).abs() < 1e-12, "proc {i}: {t} vs {expect}");
        }
    }
}
