//! Property-based tests of the predicted-timeline invariants.
//!
//! The VM's per-process clock only advances through serial compute, the
//! local cost of an eager send, and blocked waits — exactly the three span
//! kinds the timeline records. So for any model, the recorded spans of a
//! process must be well-formed (`end >= start`) and tile its clock: span
//! durations sum to the process's finish time.

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Op};
use proptest::prelude::*;

fn point_timing(t: f64) -> TimingModel {
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Point(t),
            );
        }
    }
    TimingModel::distributions(table)
}

/// Ring-shift model with per-lap compute (same shape as `prop_vm.rs`).
fn ring_model(laps: u64, size: u64, work: f64) -> Model {
    Model::new()
        .with_param("laps", laps as f64)
        .with_param("size", size as f64)
        .with_param("work", work)
        .with_stmt(looped(
            "laps",
            vec![
                Stmt::Message {
                    kind: pevpm::MsgKind::Isend,
                    size: e("size"),
                    from: e("procnum"),
                    to: e("(procnum + 1) % numprocs"),
                    handle: None,
                    label: None,
                },
                recv("size", "(procnum - 1) % numprocs", "procnum"),
                serial("work"),
            ],
        ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spans are well-formed and tile each process's clock exactly.
    #[test]
    fn timeline_spans_tile_every_process_clock(
        laps in 1u64..15,
        size in 1u64..100_000,
        work_us in 0u64..5_000,
        nprocs in 2usize..9,
        comm_us in 1u64..2_000,
        seed in 0u64..50,
    ) {
        let work = work_us as f64 * 1e-6;
        let m = ring_model(laps, size, work);
        let cfg = EvalConfig::new(nprocs).with_seed(seed).with_timeline();
        let p = evaluate(&m, &cfg, &point_timing(comm_us as f64 * 1e-6)).unwrap();
        prop_assert_eq!(p.timeline.len(), nprocs);
        for (proc_, spans) in p.timeline.iter().enumerate() {
            let mut covered = 0.0;
            let mut cursor = 0.0f64;
            for s in spans {
                prop_assert!(s.end >= s.start, "proc {proc_}: span ends before start");
                prop_assert!(
                    s.start >= cursor - 1e-12,
                    "proc {proc_}: spans overlap or run backwards"
                );
                cursor = s.end;
                covered += s.end - s.start;
            }
            prop_assert!(
                (covered - p.finish_times[proc_]).abs() < 1e-9,
                "proc {proc_}: spans cover {covered}, finish time {}",
                p.finish_times[proc_]
            );
        }
    }

    /// The Chrome export of any recorded timeline is schema-valid and has
    /// one complete event per recorded span.
    #[test]
    fn chrome_export_is_always_schema_valid(
        laps in 1u64..10,
        nprocs in 2usize..7,
        work_us in 1u64..2_000,
        seed in 0u64..50,
    ) {
        let m = ring_model(laps, 1024, work_us as f64 * 1e-6);
        let cfg = EvalConfig::new(nprocs).with_seed(seed).with_timeline();
        let p = evaluate(&m, &cfg, &point_timing(1e-5)).unwrap();
        let total: usize = p.timeline.iter().map(Vec::len).sum();
        let js = pevpm::trace_export::chrome_trace(&p).to_json();
        prop_assert_eq!(pevpm_obs::chrome::validate(&js), Ok(total));
    }

    /// Recording the timeline is observation only: it never changes the
    /// prediction itself.
    #[test]
    fn timeline_recording_does_not_perturb_results(
        laps in 1u64..10,
        nprocs in 2usize..7,
        seed in 0u64..50,
    ) {
        let m = ring_model(laps, 2048, 1e-5);
        let timing = point_timing(2e-5);
        let plain = evaluate(&m, &EvalConfig::new(nprocs).with_seed(seed), &timing).unwrap();
        let traced = evaluate(
            &m,
            &EvalConfig::new(nprocs).with_seed(seed).with_timeline(),
            &timing,
        )
        .unwrap();
        prop_assert_eq!(plain.makespan, traced.makespan);
        prop_assert_eq!(plain.steps, traced.steps);
        prop_assert_eq!(&plain.finish_times, &traced.finish_times);
        prop_assert!(plain.timeline.is_empty(), "timeline off by default");
    }
}
