//! Contract of the intra-evaluation DAG scheduler (`pevpm::dag`).
//!
//! - **Thread-count invariance**: a DAG evaluation is bitwise identical
//!   at every `eval_threads >= 1` — the scheduler's analogue of the
//!   replication engine's `(base_seed, i)` contract.
//! - **Serial equivalence on single components**: programs that condense
//!   to one SCC (rings, collectives) take the serial engine path with the
//!   configured seed, so the prediction is bit-for-bit the classic one.
//! - **Value equivalence under deterministic timing**: with point-mass
//!   timing distributions the decomposition cannot change any clock, so
//!   even multi-component programs reproduce the serial finish times.
//! - **Shared thread budget**: `threads × eval_threads` stays within the
//!   host budget when Monte-Carlo replication nests DAG evaluations.

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, monte_carlo, EvalConfig, Prediction};
use pevpm::{dag, ThreadBudget};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use std::sync::Arc;

fn point_timing(t: f64) -> TimingModel {
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Point(t),
            );
        }
    }
    TimingModel::distributions(table)
}

/// Histogram timing with real spread, so RNG draws matter and any
/// scheduling-dependent draw order would change bits.
fn noisy_timing() -> TimingModel {
    let samples: Vec<f64> = (0..400)
        .map(|i| 1e-4 + (i % 37) as f64 * 3e-6 + (i % 11) as f64 * 7e-6)
        .collect();
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Hist(Histogram::from_samples(&samples, 5e-6)),
            );
        }
    }
    TimingModel::distributions(table)
}

/// Eight ranks in four independent ping-pong pairs: four SCCs, no edges.
fn island_model() -> Model {
    Model::new().with_stmt(Stmt::Runon {
        branches: vec![
            (
                e("procnum % 2 == 0"),
                vec![looped(
                    "5",
                    vec![
                        send("1024", "procnum", "procnum + 1"),
                        recv("1024", "procnum + 1", "procnum"),
                        serial("0.0001"),
                    ],
                )],
            ),
            (
                e("procnum % 2 == 1"),
                vec![looped(
                    "5",
                    vec![
                        recv("1024", "procnum - 1", "procnum"),
                        send("1024", "procnum", "procnum - 1"),
                        serial("0.0001"),
                    ],
                )],
            ),
        ],
    })
}

/// A pipeline chain 0 → 1 → 2 → 3 with eager one-way sends: four
/// components connected by boundary-crossing messages.
fn pipeline_model() -> Model {
    Model::new()
        .with_stmt(runon("procnum == 0", vec![send("512", "0", "1")]))
        .with_stmt(runon(
            "procnum > 0",
            vec![recv("512", "procnum - 1", "procnum"), serial("0.0002")],
        ))
        .with_stmt(runon(
            "procnum > 0 && procnum < numprocs - 1",
            vec![send("512", "procnum", "procnum + 1")],
        ))
}

/// A ring exchange: every rank depends on its neighbours — one SCC.
fn ring_model() -> Model {
    Model::new().with_stmt(looped(
        "4",
        vec![
            Stmt::Message {
                kind: pevpm::MsgKind::Isend,
                size: e("1024"),
                from: e("procnum"),
                to: e("(procnum + 1) % numprocs"),
                handle: None,
                label: None,
            },
            recv("1024", "(procnum - 1) % numprocs", "procnum"),
            serial("0.0001"),
        ],
    ))
}

fn assert_identical(a: &Prediction, b: &Prediction, what: &str) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(a.nprocs, b.nprocs, "{what}: nprocs");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan"
    );
    assert_eq!(
        bits(&a.finish_times),
        bits(&b.finish_times),
        "{what}: finish_times"
    );
    assert_eq!(
        bits(&a.compute_time),
        bits(&b.compute_time),
        "{what}: compute_time"
    );
    assert_eq!(bits(&a.send_time), bits(&b.send_time), "{what}: send_time");
    assert_eq!(
        bits(&a.blocked_time),
        bits(&b.blocked_time),
        "{what}: blocked_time"
    );
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.steps, b.steps, "{what}: steps");
    assert_eq!(a.sb_peak, b.sb_peak, "{what}: sb_peak");
    assert_eq!(a.races, b.races, "{what}: races");
}

#[test]
fn multi_component_dag_is_bitwise_identical_at_any_thread_count() {
    let timing = noisy_timing();
    for (name, model, nprocs) in [
        ("islands", island_model(), 8),
        ("pipeline", pipeline_model(), 4),
    ] {
        let cfg = EvalConfig::new(nprocs).with_seed(0xDA6);
        let plan = dag::plan(&model, &cfg).unwrap();
        assert!(
            plan.components > 1,
            "{name}: expected a multi-component plan, got {}",
            plan.components
        );
        let base = evaluate(&model, &cfg.clone().with_eval_threads(1), &timing).unwrap();
        for threads in [2, 3, 8] {
            let t = evaluate(&model, &cfg.clone().with_eval_threads(threads), &timing).unwrap();
            assert_identical(&base, &t, &format!("{name} @ eval-threads={threads}"));
        }
    }
}

#[test]
fn single_component_dag_matches_serial_bitwise() {
    let timing = noisy_timing();
    let model = ring_model();
    let cfg = EvalConfig::new(6).with_seed(7);
    let plan = dag::plan(&model, &cfg).unwrap();
    assert_eq!(plan.components, 1, "ring must condense to one SCC");
    let serial = evaluate(&model, &cfg, &timing).unwrap();
    for threads in [1, 2, 8] {
        let t = evaluate(&model, &cfg.clone().with_eval_threads(threads), &timing).unwrap();
        assert_identical(&serial, &t, &format!("ring @ eval-threads={threads}"));
    }
}

#[test]
fn collective_program_falls_back_to_serial_bitwise() {
    let timing = TimingModel::hockney(100e-6, 12.5e6);
    let model = Model::new()
        .with_stmt(serial("0.001"))
        .with_stmt(collective(pevpm::CollOp::Allreduce, "4096"));
    let cfg = EvalConfig::new(4).with_seed(3);
    let serial = evaluate(&model, &cfg, &timing).unwrap();
    for threads in [1, 2, 8] {
        let t = evaluate(&model, &cfg.clone().with_eval_threads(threads), &timing).unwrap();
        assert_identical(&serial, &t, &format!("allreduce @ eval-threads={threads}"));
    }
}

#[test]
fn deterministic_timing_reproduces_serial_values_across_components() {
    // With point-mass distributions no draw can change a clock, so the
    // decomposition must reproduce the serial per-rank times even though
    // the scoreboard is partitioned.
    let timing = point_timing(2.5e-4);
    for (name, model, nprocs) in [
        ("islands", island_model(), 8),
        ("pipeline", pipeline_model(), 4),
    ] {
        let cfg = EvalConfig::new(nprocs).with_seed(11);
        let serial = evaluate(&model, &cfg, &timing).unwrap();
        let dagged = evaluate(&model, &cfg.clone().with_eval_threads(2), &timing).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&serial.finish_times),
            bits(&dagged.finish_times),
            "{name}: finish times under point timing"
        );
        assert_eq!(serial.messages, dagged.messages, "{name}: messages");
        assert_eq!(serial.steps, dagged.steps, "{name}: steps");
    }
}

#[test]
fn pipeline_boundary_messages_are_delivered() {
    // If cross-component injection dropped a message, downstream ranks
    // would deadlock. An error here means the boundary hand-off broke.
    let timing = point_timing(1e-4);
    let model = pipeline_model();
    let cfg = EvalConfig::new(4).with_eval_threads(2);
    let p = evaluate(&model, &cfg, &timing).unwrap();
    assert_eq!(p.messages, 3);
    assert!(p.finish_times.iter().all(|t| *t > 0.0 || p.nprocs == 0));
}

#[test]
fn monte_carlo_shares_the_thread_budget() {
    // `--threads 8 --eval-threads 8` must not spawn 64 workers: each
    // replica's DAG scheduler gets the per-job share of the host budget.
    // Capping is result-neutral, so the aggregate stays bitwise equal to
    // the fully serial nesting.
    let timing = noisy_timing();
    let model = island_model();
    let reps = 6;
    let registry = Arc::new(pevpm_obs::Registry::new());
    let wide_cfg = EvalConfig::new(8)
        .with_seed(0xB5D)
        .with_threads(8)
        .with_eval_threads(8)
        .with_metrics(registry.clone());
    let wide = monte_carlo(&model, &wide_cfg, &timing, reps).unwrap();

    let narrow_cfg = EvalConfig::new(8)
        .with_seed(0xB5D)
        .with_threads(1)
        .with_eval_threads(1);
    let narrow = monte_carlo(&model, &narrow_cfg, &timing, reps).unwrap();
    for (a, b) in wide.runs.iter().zip(&narrow.runs) {
        assert_identical(a, b, "budgeted vs serial nesting");
    }

    let budget = ThreadBudget::from_host();
    let outer = budget.outer(8, reps);
    let allowed = budget.inner(outer, 8);
    let used = registry.gauge("dag.workers").get();
    assert!(
        used <= allowed as f64,
        "DAG used {used} workers, budget allows {allowed} (outer {outer})"
    );
    assert!(outer * allowed <= budget.total().max(outer));
}

#[test]
fn dag_metrics_are_recorded() {
    let timing = point_timing(1e-4);
    let model = island_model();
    let registry = Arc::new(pevpm_obs::Registry::new());
    let cfg = EvalConfig::new(8)
        .with_eval_threads(2)
        .with_metrics(registry.clone());
    evaluate(&model, &cfg, &timing).unwrap();
    assert_eq!(registry.counter("dag.evaluations").get(), 1);
    assert_eq!(registry.gauge("dag.components").get(), 4.0);
    let cpf = registry.gauge("dag.critical_path_fraction").get();
    // Four equal independent components: the critical path is one
    // component's share of the steps.
    assert!(cpf > 0.0 && cpf <= 0.5, "critical-path fraction {cpf}");
}
