//! Regression tests for the scoreboard's message-matching semantics:
//! MPI's non-overtaking rule (per-pair FIFO) and the stability of the
//! race report (sorted, deduplicated).

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Op};

/// Point timings where an 8-byte message takes `small` seconds and a
/// 1 MiB message takes `big` seconds, for both blocking and nonblocking
/// sends at low and high contention.
fn sized_timing(small: f64, big: f64) -> TimingModel {
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for contention in [1u32, 2, 4] {
            table.insert(
                DistKey {
                    op,
                    size: 8,
                    contention,
                },
                CommDist::Point(small),
            );
            table.insert(
                DistKey {
                    op,
                    size: 1 << 20,
                    contention,
                },
                CommDist::Point(big),
            );
        }
    }
    TimingModel::distributions(table)
}

#[test]
fn receives_match_in_send_order_not_arrival_order() {
    // Proc 1 posts a slow 1 MiB message (seq 0, arrives ~2.0 s) and then a
    // fast 8-byte message (seq 1, arrives ~0.2 s). MPI's non-overtaking
    // rule says proc 0's first receive must still match the *first* send:
    //
    //   FIFO:      recv#1 completes ≈ 2.0, serial 1 s, recv#2 ready → ≈ 3.0
    //   earliest-  recv#1 completes ≈ 0.2, serial 1 s, recv#2 waits for
    //   arrival:   the big message → ≈ 2.0
    //
    // so a makespan near 3 s proves per-pair FIFO matching.
    let m = Model::new().with_stmt(runon2(
        "procnum == 1",
        vec![isend("1048576", "1", "0"), isend("8", "1", "0")],
        "procnum == 0",
        vec![
            recv("1048576", "1", "0"),
            serial("1.0"),
            recv("8", "1", "0"),
        ],
    ));
    let p = evaluate(&m, &EvalConfig::new(2), &sized_timing(0.2, 2.0)).unwrap();
    assert!(
        p.makespan > 2.5,
        "first receive overtook the first send: makespan {} (expected ≈ 3.0)",
        p.makespan
    );
    assert!(
        p.makespan < 3.5,
        "makespan {} far beyond the FIFO chain",
        p.makespan
    );
}

#[test]
fn wildcard_receives_also_respect_per_pair_fifo() {
    // Same shape but the receives are wildcards: the non-overtaking rule
    // still applies per pair, so the first wildcard must take the slow
    // seq-0 message even though the fast seq-1 message arrived first.
    let m = Model::new().with_stmt(runon2(
        "procnum == 1",
        vec![isend("1048576", "1", "0"), isend("8", "1", "0")],
        "procnum == 0",
        vec![recv("8", "0-1", "0"), serial("1.0"), recv("8", "0-1", "0")],
    ));
    let p = evaluate(&m, &EvalConfig::new(2), &sized_timing(0.2, 2.0)).unwrap();
    assert!(
        p.makespan > 2.5,
        "wildcard receive overtook the pair's FIFO head: makespan {}",
        p.makespan
    );
}

#[test]
fn races_are_sorted_and_deduplicated() {
    // Two independent racy fan-ins. Proc 3's races fire *earlier in
    // virtual time* than proc 0's, so insertion order alone would list
    // proc 3 first; the report contract says the vector is sorted. Each
    // fan-in also repeats the same two-candidate situation, which must
    // collapse to a single entry per distinct (proc, description).
    let m = Model::new().with_stmt(Stmt::Runon {
        branches: vec![
            (
                e("procnum == 0"),
                vec![
                    serial("20"), // both senders land long before any match
                    looped("4", vec![labelled(recv("8", "0-1", "0"), "late-fanin")]),
                ],
            ),
            (
                e("procnum == 1"),
                vec![send("8", "1", "0"), send("8", "1", "0")],
            ),
            (
                e("procnum == 2"),
                vec![send("8", "2", "0"), send("8", "2", "0")],
            ),
            (
                e("procnum == 3"),
                vec![
                    serial("10"),
                    looped("4", vec![labelled(recv("8", "0-1", "3"), "early-fanin")]),
                ],
            ),
            (
                e("procnum == 4"),
                vec![send("8", "4", "3"), send("8", "4", "3")],
            ),
            (
                e("procnum == 5"),
                vec![send("8", "5", "3"), send("8", "5", "3")],
            ),
        ],
    });
    let p = evaluate(&m, &EvalConfig::new(6), &sized_timing(0.1, 1.0)).unwrap();

    assert!(!p.races.is_empty(), "fan-ins should race");
    let mut expected = p.races.clone();
    expected.sort();
    assert_eq!(p.races, expected, "race report must be sorted");
    expected.dedup();
    assert_eq!(p.races, expected, "race report must be deduplicated");

    // Both fan-ins appear, in proc order, exactly once per description.
    assert!(p
        .races
        .iter()
        .any(|(p_, d)| *p_ == 0 && d.contains("late-fanin")));
    assert!(p
        .races
        .iter()
        .any(|(p_, d)| *p_ == 3 && d.contains("early-fanin")));
    let first_proc0 = p.races.iter().position(|(p_, _)| *p_ == 0).unwrap();
    let first_proc3 = p.races.iter().position(|(p_, _)| *p_ == 3).unwrap();
    assert!(
        first_proc0 < first_proc3,
        "sorted by proc number: {:?}",
        p.races
    );
}

#[test]
fn fifo_makespan_is_stable_across_repeated_evaluations() {
    // The FIFO chain plus deterministic point timings must give the exact
    // same result on every evaluation, at any seed — matching never
    // depends on traversal order.
    let m = Model::new().with_stmt(runon2(
        "procnum == 1",
        vec![isend("1048576", "1", "0"), isend("8", "1", "0")],
        "procnum == 0",
        vec![
            recv("1048576", "1", "0"),
            serial("1.0"),
            recv("8", "1", "0"),
        ],
    ));
    let timing = sized_timing(0.2, 2.0);
    let base = evaluate(&m, &EvalConfig::new(2).with_seed(1), &timing).unwrap();
    for seed in [2u64, 99, 0xFFFF] {
        let p = evaluate(&m, &EvalConfig::new(2).with_seed(seed), &timing).unwrap();
        assert_eq!(p.makespan.to_bits(), base.makespan.to_bits());
    }
}
