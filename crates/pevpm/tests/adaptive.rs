//! Statistical calibration of the adaptive replication engine.
//!
//! Three layers of evidence, from pure statistics to the full engine:
//!
//! 1. **Synthetic calibration** — the sequential stopping rule
//!    ([`pevpm::stats::AdaptivePolicy::stop_point`]) is run over
//!    Box-Muller normal streams with *known* mean and variance, across a
//!    grid of ≥ 20 seeds. The confidence interval at the stopping point
//!    must cover the true mean at close to the nominal rate.
//!    Tolerance: nominal 95% coverage, asserted ≥ 85% over the grid —
//!    optional stopping biases coverage slightly below nominal (the rule
//!    stops precisely when the interval looks narrow), and the grid
//!    itself is a finite sample; both effects are well inside 10 points.
//! 2. **Variance reduction** — common random numbers make paired
//!    what-if differences strictly less noisy than independent seeding,
//!    and antithetic pairing shrinks the variance of pair means, on real
//!    model evaluations.
//! 3. **Engine contract** — adaptive runs are deterministic for a given
//!    (seed, precision) at every thread count, agree replica-for-replica
//!    with the fixed-reps prefix, stop exactly where the reference rule
//!    says, interact correctly with `--quorum`, and reject the
//!    degenerate `--reps 1`-style configurations instead of emitting
//!    NaN.

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::stats::{self, AdaptivePolicy};
use pevpm::timing::TimingModel;
use pevpm::vm::{monte_carlo, EvalConfig, PevpmError};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op, Summary};

// ---------------------------------------------------------------------
// Synthetic streams: splitmix64 + Box-Muller, no external dependency.
// ---------------------------------------------------------------------

/// splitmix64: a tiny, well-mixed PRNG for the synthetic streams.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1) — never exactly zero, so `ln` stays finite.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// A stream of `n` i.i.d. N(mean, sd²) samples via Box-Muller.
fn normal_stream(seed: u64, n: usize, mean: f64, sd: f64) -> Vec<f64> {
    let mut rng = SplitMix(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u1 = rng.next_f64();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push(mean + sd * r * theta.cos());
        if out.len() < n {
            out.push(mean + sd * r * theta.sin());
        }
    }
    out
}

// ---------------------------------------------------------------------
// 1. Synthetic calibration of the stopping rule
// ---------------------------------------------------------------------

/// Coverage calibration on a ≥ 20-seed grid: stop each normal stream
/// with the sequential rule and check whether the CI at the stopping
/// point covers the true mean. Documented tolerance: ≥ 85% empirical
/// coverage at 95% nominal (see module docs for why not exactly 95%).
#[test]
fn stopping_rule_coverage_is_near_nominal_across_a_seed_grid() {
    const SEEDS: u64 = 100; // ≥ 20 required; more seeds, tighter check
    const TRUE_MEAN: f64 = 10.0;
    const TRUE_SD: f64 = 1.0;
    let policy = AdaptivePolicy::new(0.02)
        .with_min_reps(4)
        .with_max_reps(512);
    let mut covered = 0u64;
    let mut total_reps = 0usize;
    for seed in 0..SEEDS {
        let xs = normal_stream(1000 + seed, policy.max_reps, TRUE_MEAN, TRUE_SD);
        let stop = policy.stop_point(&xs);
        assert!(stop >= policy.min_reps && stop <= policy.max_reps);
        total_reps += stop;
        let s = Summary::from_slice(&xs[..stop]);
        let hw = stats::ci_half_width(
            s.count(),
            s.sample_variance().unwrap().sqrt(),
            policy.confidence,
        );
        if (s.mean().unwrap() - TRUE_MEAN).abs() <= hw {
            covered += 1;
        }
    }
    let coverage = covered as f64 / SEEDS as f64;
    assert!(
        coverage >= 0.85,
        "empirical coverage {coverage:.3} below tolerance 0.85 (nominal 0.95)"
    );
    // The rule must actually be adaptive: a 10% relative sd stream at 2%
    // precision needs far more than min_reps but far fewer than the cap.
    let mean_reps = total_reps as f64 / SEEDS as f64;
    assert!(
        mean_reps > policy.min_reps as f64 && mean_reps < policy.max_reps as f64,
        "mean stopping point {mean_reps:.1} is pinned to a bound"
    );
}

/// Easy streams (tight spread) stop at the floor; hard streams (wide
/// spread) run to the ceiling — the rep count responds to the noise.
#[test]
fn stopping_point_tracks_stream_difficulty() {
    let policy = AdaptivePolicy::new(0.05).with_min_reps(4).with_max_reps(64);
    for seed in 0..20 {
        let easy = normal_stream(seed, 64, 10.0, 0.001);
        assert_eq!(
            policy.stop_point(&easy),
            policy.min_reps,
            "seed {seed}: near-constant stream should stop at min_reps"
        );
        let hard = normal_stream(seed, 64, 10.0, 8.0);
        let stop = policy.stop_point(&hard);
        assert!(
            stop > policy.min_reps,
            "seed {seed}: wide stream stopped at the floor ({stop})"
        );
    }
}

/// The drift detector's false-positive rate on stationary normal
/// streams stays near its significance level, and its power on a real
/// mid-stream shift is essentially 1.
#[test]
fn drift_detector_calibrates_on_synthetic_streams() {
    const SEEDS: u64 = 200;
    let mut false_positives = 0u64;
    let mut hits = 0u64;
    for seed in 0..SEEDS {
        let xs = normal_stream(5000 + seed, 40, 10.0, 1.0);
        if stats::detect_drift(&xs, stats::DRIFT_ALPHA) {
            false_positives += 1;
        }
        let mut shifted = xs.clone();
        for x in shifted.iter_mut().skip(20) {
            *x += 5.0; // a 5-sigma mean shift half-way through
        }
        if stats::detect_drift(&shifted, stats::DRIFT_ALPHA) {
            hits += 1;
        }
    }
    // alpha = 1e-3, 200 trials: expect ~0.2 false positives; allow a
    // little slack but far less than the shifted-stream hit count.
    assert!(
        false_positives <= 3,
        "{false_positives}/{SEEDS} stationary streams flagged as drifting"
    );
    assert!(
        hits >= SEEDS - 2,
        "only {hits}/{SEEDS} shifted streams detected"
    );
}

// ---------------------------------------------------------------------
// Engine fixtures
// ---------------------------------------------------------------------

/// A stochastic timing model with real spread, optionally scaled — the
/// scaled variant is the "what-if" arm for CRN tests.
fn noisy_timing(scale: f64) -> TimingModel {
    let samples: Vec<f64> = (0..400)
        .map(|i| scale * (1e-4 + (i % 37) as f64 * 3e-6 + (i % 11) as f64 * 7e-6))
        .collect();
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Hist(Histogram::from_samples(&samples, 5e-6 * scale)),
            );
        }
    }
    TimingModel::distributions(table)
}

/// A small ring-exchange model whose makespan is dominated by sampled
/// communication times (so replication noise is real).
fn ring_model(iters: &str) -> Model {
    Model::new().with_stmt(looped(
        iters,
        vec![
            Stmt::Message {
                kind: pevpm::MsgKind::Isend,
                size: e("1024"),
                from: e("procnum"),
                to: e("(procnum + 1) % numprocs"),
                handle: None,
                label: None,
            },
            recv("1024", "(procnum - 1) % numprocs", "procnum"),
            serial("0.00001"),
        ],
    ))
}

fn base_cfg(seed: u64) -> EvalConfig {
    EvalConfig::new(4).with_seed(seed).with_threads(2)
}

// ---------------------------------------------------------------------
// 2. Variance reduction: CRN and antithetic pairing
// ---------------------------------------------------------------------

/// Common random numbers: comparing two what-if arms (same model, one
/// timing table 20% slower) on a *shared* seed stream must make the
/// paired difference strictly less variable than independent seeding.
#[test]
fn crn_reduces_paired_difference_variance() {
    let model = ring_model("8");
    let fast = noisy_timing(1.0);
    let slow = noisy_timing(1.2);
    let reps = 24;
    let seed = 0xC12;

    let arm_a = monte_carlo(&model, &base_cfg(seed), &fast, reps).unwrap();
    let arm_b_crn = monte_carlo(&model, &base_cfg(seed), &slow, reps).unwrap();
    let arm_b_ind = monte_carlo(&model, &base_cfg(seed + 7919), &slow, reps).unwrap();

    let var_of_diff = |a: &pevpm::vm::McPrediction, b: &pevpm::vm::McPrediction| {
        let diffs: Vec<f64> = a
            .runs
            .iter()
            .zip(&b.runs)
            .map(|(x, y)| y.makespan - x.makespan)
            .collect();
        Summary::from_slice(&diffs).sample_variance().unwrap()
    };
    let paired = var_of_diff(&arm_a, &arm_b_crn);
    let independent = var_of_diff(&arm_a, &arm_b_ind);
    assert!(
        paired < independent,
        "CRN paired-difference variance {paired:e} not below independent {independent:e}"
    );
    // With a pure scale change and shared quantile draws the correlation
    // is near-perfect: expect an order of magnitude, not a sliver.
    assert!(
        paired < independent / 4.0,
        "CRN reduction too weak: paired {paired:e} vs independent {independent:e}"
    );
}

/// Antithetic pairing: replicas (2k, 2k+1) share a seed and the odd one
/// mirrors every quantile draw (u → 1-u). Because each sampled
/// communication time is monotone in its draw, pair means are
/// negatively-correlated averages and their variance drops below
/// independent pairs'.
#[test]
fn antithetic_pairing_reduces_pair_mean_variance() {
    let model = ring_model("8");
    let timing = noisy_timing(1.0);
    let reps = 32; // 16 pairs
    let seed = 0xA17;

    let plain = monte_carlo(&model, &base_cfg(seed), &timing, reps).unwrap();
    let anti = monte_carlo(&model, &base_cfg(seed).with_antithetic(), &timing, reps).unwrap();

    let pair_means = |mc: &pevpm::vm::McPrediction| -> Vec<f64> {
        mc.runs
            .chunks(2)
            .map(|p| (p[0].makespan + p[1].makespan) / 2.0)
            .collect()
    };
    let var_plain = Summary::from_slice(&pair_means(&plain))
        .sample_variance()
        .unwrap();
    let var_anti = Summary::from_slice(&pair_means(&anti))
        .sample_variance()
        .unwrap();
    assert!(
        var_anti < var_plain,
        "antithetic pair-mean variance {var_anti:e} not below plain {var_plain:e}"
    );

    // The even replica of each antithetic pair is the *unmirrored*
    // evaluation of that pair's seed — identical to the plain replica at
    // the pair index. (Pair k shares plain replica k's seed.)
    for k in 0..reps / 2 {
        assert_eq!(
            anti.runs[2 * k].makespan.to_bits(),
            plain.runs[k].makespan.to_bits(),
            "antithetic even replica {} diverged from plain replica {k}",
            2 * k
        );
    }
}

// ---------------------------------------------------------------------
// 3. Engine contract: determinism, prefix agreement, quorum, edges
// ---------------------------------------------------------------------

fn adaptive_cfg(seed: u64, precision: f64, max_reps: usize) -> EvalConfig {
    base_cfg(seed).with_adaptive(
        AdaptivePolicy::new(precision)
            .with_min_reps(4)
            .with_max_reps(max_reps),
    )
}

/// Adaptive mode is deterministic for a given (seed, precision): the
/// chosen rep count and every replication are bitwise identical across
/// re-runs and across thread counts.
#[test]
fn adaptive_is_deterministic_across_reruns_and_thread_counts() {
    let model = ring_model("6");
    let timing = noisy_timing(1.0);
    let reference = monte_carlo(&model, &adaptive_cfg(0xBEEF, 0.02, 48), &timing, 48).unwrap();
    let ref_report = reference.adaptive.expect("adaptive report missing");
    assert!(ref_report.reps >= 4 && ref_report.reps <= 48);

    for threads in [1, 2, 4, 8] {
        let cfg = adaptive_cfg(0xBEEF, 0.02, 48).with_threads(threads);
        let got = monte_carlo(&model, &cfg, &timing, 48).unwrap();
        let report = got.adaptive.expect("adaptive report missing");
        assert_eq!(
            report.reps, ref_report.reps,
            "{threads} threads chose a different rep count"
        );
        assert_eq!(
            got.mean.to_bits(),
            reference.mean.to_bits(),
            "{threads} threads: mean"
        );
        assert_eq!(
            report.rel_half_width.to_bits(),
            ref_report.rel_half_width.to_bits(),
            "{threads} threads: achieved half-width"
        );
        assert_eq!(got.runs.len(), reference.runs.len());
        for (i, (a, b)) in got.runs.iter().zip(&reference.runs).enumerate() {
            assert_eq!(
                a.makespan.to_bits(),
                b.makespan.to_bits(),
                "{threads} threads: replica {i}"
            );
        }
    }
}

/// The adaptive batch is exactly the fixed-reps batch truncated at the
/// reference stopping rule's index: replica i agrees bitwise for every
/// i below the stop, and the stop is where `stop_point` says on the
/// fixed stream.
#[test]
fn adaptive_agrees_with_the_fixed_prefix_and_the_reference_rule() {
    let model = ring_model("6");
    let timing = noisy_timing(1.0);
    let max_reps = 48;
    let policy = AdaptivePolicy::new(0.02)
        .with_min_reps(4)
        .with_max_reps(max_reps);

    let fixed = monte_carlo(&model, &base_cfg(0x5EED), &timing, max_reps).unwrap();
    let adaptive = monte_carlo(
        &model,
        &base_cfg(0x5EED).with_adaptive(policy),
        &timing,
        max_reps,
    )
    .unwrap();
    let report = adaptive.adaptive.expect("adaptive report missing");

    let stream: Vec<f64> = fixed.runs.iter().map(|p| p.makespan).collect();
    assert_eq!(
        report.reps,
        policy.stop_point(&stream),
        "engine stop differs from the reference rule"
    );
    assert_eq!(adaptive.runs.len(), report.reps);
    for (i, (a, b)) in adaptive.runs.iter().zip(&fixed.runs).enumerate() {
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "replica {i} differs between adaptive and fixed prefixes"
        );
    }
    // The adaptive mean must sit inside its own reported CI of the
    // full fixed batch's mean (the calibration claim, with slack for
    // the fixed mean itself being an estimate).
    let slack = 3.0 * report.rel_half_width.max(policy.precision) * adaptive.mean.abs();
    assert!(
        (adaptive.mean - fixed.mean).abs() <= slack,
        "adaptive mean {} vs fixed {} outside {slack}",
        adaptive.mean,
        fixed.mean
    );
    assert!(report.converged, "easy ring model should converge");
    assert!(!report.drift, "stationary batch flagged as drifting");
    assert!(
        report.rel_half_width <= policy.precision,
        "converged but achieved {} > target {}",
        report.rel_half_width,
        policy.precision
    );
    assert_eq!(report.reps_saved(), max_reps - report.reps);
}

/// A precision no stream of `max_reps` noisy replications can reach:
/// the engine runs to the ceiling and reports non-convergence rather
/// than looping or lying.
#[test]
fn unreachable_precision_stops_at_the_ceiling_unconverged() {
    let model = ring_model("4");
    let timing = noisy_timing(1.0);
    let mc = monte_carlo(&model, &adaptive_cfg(3, 1e-9, 12), &timing, 12).unwrap();
    let report = mc.adaptive.unwrap();
    assert_eq!(report.reps, 12);
    assert!(!report.converged);
    assert!(report.rel_half_width > 1e-9);
    assert_eq!(report.reps_saved(), 0);
}

/// Quorum interacts with early stopping by counting the replications
/// *actually run*: a quorum sized for the ceiling must not fail a batch
/// that legitimately stopped early with every replication succeeding.
#[test]
fn quorum_counts_reps_actually_run_under_early_stopping() {
    let model = ring_model("6");
    let timing = noisy_timing(1.0);
    // quorum = max_reps: meaningful for a fixed batch of 48; an early
    // stop at k < 48 clamps it to k (all k succeeded → quorum met).
    let cfg = adaptive_cfg(0x5EED, 0.02, 48).with_quorum(48);
    let mc = monte_carlo(&model, &cfg, &timing, 48).unwrap();
    let report = mc.adaptive.unwrap();
    assert!(
        report.reps < 48,
        "stream unexpectedly hard; quorum untested"
    );
    assert!(mc.failures.is_empty());
    assert_eq!(mc.runs.len(), report.reps);

    // The fixed path's quorum semantics are untouched by the feature.
    let fixed = monte_carlo(&model, &base_cfg(0x5EED).with_quorum(8), &timing, 8).unwrap();
    assert!(fixed.adaptive.is_none());
    assert_eq!(fixed.runs.len(), 8);
}

/// `--reps 1` stays well-defined on the fixed path (stderr pinned to
/// 0.0, not NaN), and the adaptive path rejects a sub-2 floor as a
/// configuration error instead of dividing by zero degrees of freedom.
#[test]
fn single_rep_and_degenerate_floors_are_handled() {
    let model = ring_model("4");
    let timing = noisy_timing(1.0);
    let one = monte_carlo(&model, &base_cfg(9), &timing, 1).unwrap();
    assert_eq!(one.runs.len(), 1);
    assert_eq!(one.stderr.to_bits(), 0.0f64.to_bits(), "--reps 1 stderr");
    assert!(one.mean.is_finite());

    let bad_floor =
        base_cfg(9).with_adaptive(AdaptivePolicy::new(0.05).with_min_reps(1).with_max_reps(8));
    match monte_carlo(&model, &bad_floor, &timing, 8) {
        Err(PevpmError::Config(msg)) => {
            assert!(msg.contains("min-reps"), "unhelpful message: {msg}")
        }
        other => panic!("expected Config error, got {other:?}"),
    }

    let bad_precision = base_cfg(9).with_adaptive(AdaptivePolicy::new(-0.5));
    assert!(matches!(
        monte_carlo(&model, &bad_precision, &timing, 8),
        Err(PevpmError::Config(_))
    ));
}
