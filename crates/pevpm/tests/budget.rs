//! Hardened-evaluation contract: the VM terminates hostile models with a
//! structured diagnostic instead of hanging or aborting.
//!
//! - golden-text coverage of the `deadlock at t=…` report (the CLI prints
//!   this verbatim, so its exact shape is a compatibility surface);
//! - [`RunBudget`]: a *livelocked* model (unbounded progress, no
//!   deadlock) is stopped by whichever budget axis fires first, and the
//!   [`BudgetReport`] carries partial results;
//! - deadlock + budget compose: the budget fires first on a livelocked
//!   model even when a deadlock would eventually be impossible to reach;
//! - panic-isolated replication with k-of-n quorum aggregation.

use pevpm::model::build::*;
use pevpm::model::Model;
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, monte_carlo, BudgetAxis, EvalConfig, PevpmError, RunBudget};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};

fn fixed_timing(t: f64) -> TimingModel {
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 30] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Point(t),
            );
        }
    }
    TimingModel::distributions(table)
}

/// Two processes, each stuck receiving from the other after 1.5 s of
/// computation: a classic deadlock with a nonzero timestamp.
fn deadlocking_model() -> Model {
    Model::new().with_stmt(serial("1.5")).with_stmt(runon2(
        "procnum == 0",
        vec![recv("8", "1", "0")],
        "procnum == 1",
        vec![recv("8", "0", "1")],
    ))
}

/// A livelocked model: a loop so long it stands in for "unbounded"
/// progress — every sweep advances, so deadlock detection never triggers.
fn livelocked_model() -> Model {
    Model::new().with_stmt(looped("1000000000", vec![serial("0.001")]))
}

#[test]
fn deadlock_diagnostic_golden_text() {
    let err = evaluate(
        &deadlocking_model(),
        &EvalConfig::new(2),
        &fixed_timing(0.1),
    )
    .unwrap_err();
    // Golden text: the CLI and bench harness print this verbatim, and the
    // DESIGN.md exit-code table documents its shape.
    assert_eq!(
        err.to_string(),
        "deadlock at t=1.500000s: [proc 0: Recv(from=1, seq=0)] [proc 1: Recv(from=0, seq=0)]"
    );
}

#[test]
fn livelock_is_stopped_by_step_budget_with_partial_results() {
    let cfg = EvalConfig::new(2).with_budget(RunBudget::default().with_max_steps(10_000));
    let err = evaluate(&livelocked_model(), &cfg, &fixed_timing(0.1)).unwrap_err();
    let PevpmError::Budget(report) = err else {
        panic!("expected Budget error, got {err}");
    };
    assert_eq!(report.axis, BudgetAxis::Steps);
    assert_eq!(report.steps, 10_001, "aborts on the first step over budget");
    assert_eq!(report.clocks.len(), 2);
    assert!(
        report.clocks.iter().any(|&c| c > 0.0),
        "partial clocks show the progress made: {:?}",
        report.clocks
    );
    assert_eq!(report.finished, vec![false, false]);
    assert!(
        report.blocked.is_empty(),
        "a livelock has no blocked procs — that distinguishes it from deadlock"
    );
    let text = report.to_string();
    assert!(
        text.contains("evaluation budget exceeded (step limit)"),
        "{text}"
    );
    assert!(text.contains("0/2 procs finished"), "{text}");
}

#[test]
fn livelock_is_stopped_by_virtual_time_budget() {
    let cfg = EvalConfig::new(1).with_budget(RunBudget::default().with_max_virtual_secs(2.0));
    let err = evaluate(&livelocked_model(), &cfg, &fixed_timing(0.1)).unwrap_err();
    let PevpmError::Budget(report) = err else {
        panic!("expected Budget error, got {err}");
    };
    assert_eq!(report.axis, BudgetAxis::VirtualTime);
    // 2.0 s of budget at 1 ms per iteration: the clock just crossed 2.0.
    assert!(
        report.virtual_time > 2.0 && report.virtual_time < 2.1,
        "virtual_time {}",
        report.virtual_time
    );
}

#[test]
fn budget_fires_before_deadlock_on_a_livelocked_prefix() {
    // The deadlocking receives sit *behind* a livelocked loop: deadlock
    // detection alone would spin through the loop for ~1e9 steps first.
    // The budget must fire first — this is the compose regression test.
    let m = Model::new()
        .with_stmt(looped("1000000000", vec![serial("0.0001")]))
        .with_stmt(runon2(
            "procnum == 0",
            vec![recv("8", "1", "0")],
            "procnum == 1",
            vec![recv("8", "0", "1")],
        ));
    let cfg = EvalConfig::new(2).with_budget(RunBudget::default().with_max_steps(50_000));
    match evaluate(&m, &cfg, &fixed_timing(0.1)).unwrap_err() {
        PevpmError::Budget(report) => assert_eq!(report.axis, BudgetAxis::Steps),
        other => panic!("budget must fire before deadlock, got {other}"),
    }
}

#[test]
fn deadlock_still_wins_when_budget_is_roomy() {
    let cfg = EvalConfig::new(2).with_budget(RunBudget::default().with_max_steps(1_000_000));
    match evaluate(&deadlocking_model(), &cfg, &fixed_timing(0.1)).unwrap_err() {
        PevpmError::Deadlock { time, blocked } => {
            assert!((time - 1.5).abs() < 1e-9);
            assert_eq!(blocked.len(), 2);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn wall_budget_stops_a_spin() {
    // 64 Ki-step check cadence: the loop body must be cheap enough to hit
    // the cadence quickly but the model big enough not to finish first.
    let cfg = EvalConfig::new(1).with_budget(RunBudget::default().with_max_wall_secs(0.05));
    let err = evaluate(&livelocked_model(), &cfg, &fixed_timing(0.1)).unwrap_err();
    match err {
        PevpmError::Budget(report) => {
            assert_eq!(report.axis, BudgetAxis::WallTime);
            assert!(report.wall_secs >= 0.05);
        }
        other => panic!("expected wall budget, got {other}"),
    }
}

#[test]
fn monte_carlo_without_quorum_reports_lowest_index_failure() {
    // All replications deadlock; the error must be the plain Deadlock of
    // replication 0 (what a serial loop would have hit), not a quorum
    // wrapper.
    let err = monte_carlo(
        &deadlocking_model(),
        &EvalConfig::new(2),
        &fixed_timing(0.1),
        4,
    )
    .unwrap_err();
    assert!(
        matches!(err, PevpmError::Deadlock { .. }),
        "expected Deadlock, got {err}"
    );
}

#[test]
fn monte_carlo_quorum_failure_is_structured() {
    let cfg = EvalConfig::new(2).with_quorum(2);
    let err = monte_carlo(&deadlocking_model(), &cfg, &fixed_timing(0.1), 4).unwrap_err();
    match err {
        PevpmError::QuorumFailed {
            succeeded,
            required,
            total,
            first_failure,
        } => {
            assert_eq!((succeeded, required, total), (0, 2, 4));
            assert!(matches!(*first_failure, PevpmError::Deadlock { .. }));
        }
        other => panic!("expected QuorumFailed, got {other}"),
    }
}

#[test]
fn quorum_met_with_partial_failures_surfaces_every_report() {
    // Stochastic timing: each replication draws its own send latency, so
    // per-replication makespans genuinely differ. A virtual-time budget
    // placed strictly between the fastest and slowest replication then
    // fails *some* replications deterministically while the rest succeed
    // — the quorum path that used to go uncovered: the batch completes,
    // and every failure must be surfaced in `McPrediction::failures`
    // rather than silently dropped from the aggregate.
    let samples: Vec<f64> = (0..40).map(|i| 1.0 + 0.05 * i as f64).collect();
    let mut table = DistTable::new();
    table.insert(
        DistKey {
            op: Op::Send,
            size: 64,
            contention: 1,
        },
        CommDist::Hist(Histogram::from_samples(&samples, 0.1)),
    );
    let timing = TimingModel::distributions(table);
    let m = Model::new().with_stmt(runon2(
        "procnum == 0",
        vec![send("64", "0", "1")],
        "procnum == 1",
        vec![recv("64", "0", "1")],
    ));

    let reps = 16;
    let free = monte_carlo(&m, &EvalConfig::new(2), &timing, reps).unwrap();
    assert!(
        free.max > free.min,
        "timing jitter must spread the makespans: [{}, {}]",
        free.min,
        free.max
    );
    let threshold = (free.min + free.max) / 2.0;

    let cfg = EvalConfig::new(2)
        .with_quorum(1)
        .with_budget(RunBudget::default().with_max_virtual_secs(threshold));
    let mc = monte_carlo(&m, &cfg, &timing, reps).unwrap();
    assert!(!mc.failures.is_empty(), "slow replications must fail");
    assert!(!mc.runs.is_empty(), "fast replications must succeed");
    assert_eq!(
        mc.runs.len() + mc.failures.len(),
        reps,
        "every replication is accounted for exactly once"
    );
    // The aggregate covers only the survivors, so it sits below the
    // budget that killed the rest.
    assert!(
        mc.max <= threshold,
        "max {} vs threshold {threshold}",
        mc.max
    );
    assert!(mc.mean <= threshold);
    let mut last = None;
    for (idx, what) in &mc.failures {
        assert!(*idx < reps, "replication index {idx} out of range");
        assert!(
            last.is_none_or(|l| l < *idx),
            "failures are reported in index order"
        );
        last = Some(*idx);
        assert!(
            what.contains("budget exceeded"),
            "failure report must carry the budget diagnostic: {what}"
        );
    }
}

#[test]
fn quorum_none_with_no_failures_matches_previous_behaviour() {
    let m = Model::new().with_stmt(runon2(
        "procnum == 0",
        vec![send("64", "0", "1")],
        "procnum == 1",
        vec![recv("64", "0", "1")],
    ));
    let mc = monte_carlo(&m, &EvalConfig::new(2), &fixed_timing(0.01), 8).unwrap();
    assert_eq!(mc.runs.len(), 8);
    assert!(mc.failures.is_empty());
}
