//! Determinism contract of the parallel replication engine.
//!
//! Replica `i` of a Monte-Carlo batch is seeded from `(base_seed, i)`
//! alone, and results are collected in replica-index order, so running a
//! batch on 1 thread and on N threads must produce **bitwise identical**
//! predictions — every float, every label, every race report. These tests
//! are the regression gate for that contract: any scheduling-dependent
//! state sneaking into an evaluation (shared RNG, thread-order
//! aggregation, unsorted race reports) fails them.

use pevpm::model::build::*;
use pevpm::model::{Model, Stmt};
use pevpm::replicate;
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, monte_carlo, EvalConfig, Prediction};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};

/// A stochastic timing model: histogram entries with real spread, so each
/// evaluation's RNG draws matter.
fn noisy_timing() -> TimingModel {
    let samples: Vec<f64> = (0..400)
        .map(|i| 1e-4 + (i % 37) as f64 * 3e-6 + (i % 11) as f64 * 7e-6)
        .collect();
    let mut table = DistTable::new();
    for op in [Op::Send, Op::Isend] {
        for &size in &[1u64, 1 << 24] {
            table.insert(
                DistKey {
                    op,
                    size,
                    contention: 1,
                },
                CommDist::Hist(Histogram::from_samples(&samples, 5e-6)),
            );
        }
    }
    TimingModel::distributions(table)
}

/// A model exercising every observable the engine reports: a ring
/// exchange (labelled blocking receives → loss_by_label), nonblocking
/// sends (scoreboard occupancy → sb_peak), and a wildcard fan-in with
/// several simultaneous candidates (→ race reports).
fn stress_model() -> Model {
    Model::new()
        .with_stmt(looped(
            "6",
            vec![
                Stmt::Message {
                    kind: pevpm::MsgKind::Isend,
                    size: e("1024"),
                    from: e("procnum"),
                    to: e("(procnum + 1) % numprocs"),
                    handle: None,
                    label: None,
                },
                labelled(
                    recv("1024", "(procnum - 1) % numprocs", "procnum"),
                    "ring-recv",
                ),
                serial("0.0001"),
            ],
        ))
        .with_stmt(Stmt::Runon {
            branches: vec![
                (
                    e("procnum == 0"),
                    vec![
                        serial("0.01"), // let every sender land first
                        labelled(recv("8", "0-1", "0"), "fanin"),
                        recv("8", "0-1", "0"),
                        recv("8", "0-1", "0"),
                    ],
                ),
                (e("procnum != 0"), vec![send("8", "procnum", "0")]),
            ],
        })
}

/// Bitwise comparison of every field of two predictions.
fn assert_identical(a: &Prediction, b: &Prediction, what: &str) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(a.nprocs, b.nprocs, "{what}: nprocs");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan"
    );
    assert_eq!(
        bits(&a.finish_times),
        bits(&b.finish_times),
        "{what}: finish_times"
    );
    assert_eq!(
        bits(&a.compute_time),
        bits(&b.compute_time),
        "{what}: compute_time"
    );
    assert_eq!(bits(&a.send_time), bits(&b.send_time), "{what}: send_time");
    assert_eq!(
        bits(&a.blocked_time),
        bits(&b.blocked_time),
        "{what}: blocked_time"
    );
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.steps, b.steps, "{what}: steps");
    assert_eq!(a.sb_peak, b.sb_peak, "{what}: sb_peak");
    assert_eq!(a.races, b.races, "{what}: races");
    assert_eq!(
        a.loss_by_label.len(),
        b.loss_by_label.len(),
        "{what}: loss labels"
    );
    for (label, loss) in &a.loss_by_label {
        let other = b
            .loss_by_label
            .get(label)
            .unwrap_or_else(|| panic!("{what}: label {label:?} missing from one side"));
        assert_eq!(loss.to_bits(), other.to_bits(), "{what}: loss[{label}]");
    }
}

#[test]
fn monte_carlo_is_bitwise_identical_at_any_thread_count() {
    let timing = noisy_timing();
    let model = stress_model();
    let reps = 12;
    let serial_cfg = EvalConfig::new(4).with_seed(0xD5).with_threads(1);
    let serial = monte_carlo(&model, &serial_cfg, &timing, reps).unwrap();

    // The stochastic timing must actually exercise the RNG, or this test
    // proves nothing.
    assert!(serial.stderr > 0.0, "timing model produced no spread");
    assert!(!serial.runs[0].races.is_empty(), "fan-in produced no races");
    assert!(
        !serial.runs[0].loss_by_label.is_empty(),
        "no labelled losses"
    );

    for threads in [2, 3, 4, 8] {
        let cfg = serial_cfg.clone().with_threads(threads);
        let par = monte_carlo(&model, &cfg, &timing, reps).unwrap();
        assert_eq!(
            serial.mean.to_bits(),
            par.mean.to_bits(),
            "{threads} threads: mean"
        );
        assert_eq!(
            serial.stderr.to_bits(),
            par.stderr.to_bits(),
            "{threads} threads: stderr"
        );
        assert_eq!(
            serial.min.to_bits(),
            par.min.to_bits(),
            "{threads} threads: min"
        );
        assert_eq!(
            serial.max.to_bits(),
            par.max.to_bits(),
            "{threads} threads: max"
        );
        assert_eq!(serial.runs.len(), par.runs.len());
        for (i, (a, b)) in serial.runs.iter().zip(&par.runs).enumerate() {
            assert_identical(a, b, &format!("{threads} threads, replica {i}"));
        }
    }
}

#[test]
fn parallel_replicas_match_standalone_evaluations() {
    // Each replica of a parallel batch must equal a standalone `evaluate`
    // with the derived seed — the batch adds no hidden state.
    let timing = noisy_timing();
    let model = stress_model();
    let base = 0xABCD;
    let cfg = EvalConfig::new(4).with_seed(base).with_threads(4);
    let mc = monte_carlo(&model, &cfg, &timing, 6).unwrap();
    for (i, run) in mc.runs.iter().enumerate() {
        let solo_cfg = EvalConfig::new(4).with_seed(replicate::replica_seed(base, i as u64));
        let solo = evaluate(&model, &solo_cfg, &timing).unwrap();
        assert_identical(&solo, run, &format!("replica {i} vs standalone"));
    }
}

#[test]
fn thread_count_zero_resolves_to_all_cores_and_stays_deterministic() {
    let timing = noisy_timing();
    let model = stress_model();
    let serial = monte_carlo(
        &model,
        &EvalConfig::new(4).with_seed(7).with_threads(1),
        &timing,
        8,
    )
    .unwrap();
    let auto = monte_carlo(
        &model,
        &EvalConfig::new(4).with_seed(7), // default threads = 0 = all cores
        &timing,
        8,
    )
    .unwrap();
    assert_eq!(serial.mean.to_bits(), auto.mean.to_bits());
    for (a, b) in serial.runs.iter().zip(&auto.runs) {
        assert_identical(a, b, "auto threads");
    }
}
