//! Property tests for the scoreboard slab and per-pair FIFO index: handles
//! stay stable under arbitrary insert/remove interleavings (a reused slot
//! never resurrects a stale handle), and per-(sender, receiver) message
//! order is preserved under any mix of directed reservations and wildcard
//! head consumption — the invariants the VM's match phase relies on.

use pevpm::scoreboard::{Handle, PairFifo, Slab};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/remove interleavings against a reference map: live
    /// handles always resolve to their value, removed handles never resolve
    /// again (even after their slot is reused), and `len` tracks exactly.
    #[test]
    fn slab_handles_are_stable_and_generational(
        seed in 0u64..1_000_000,
        steps in 1usize..200,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<(Handle, u64)> = Vec::new();
        let mut dead: Vec<Handle> = Vec::new();
        let mut next_val = 0u64;

        for _ in 0..steps {
            if live.is_empty() || rng.gen_bool(0.6) {
                let h = slab.insert(next_val);
                live.push((h, next_val));
                next_val += 1;
            } else {
                let i = rng.gen_range(0..live.len());
                let (h, v) = live.swap_remove(i);
                prop_assert_eq!(slab.remove(h), Some(v));
                prop_assert_eq!(slab.remove(h), None, "double-remove must fail");
                dead.push(h);
            }
            prop_assert_eq!(slab.len(), live.len());
            for &(h, v) in &live {
                prop_assert_eq!(slab.get(h), Some(&v), "live handle {} lost", h);
            }
            for &h in &dead {
                prop_assert!(!slab.contains(h), "stale handle {} resurrected", h);
            }
        }

        // Iteration yields exactly the live set.
        let mut seen: Vec<(Handle, u64)> = slab.iter().map(|(h, &v)| (h, v)).collect();
        let mut expect = live.clone();
        seen.sort_by_key(|(_, v)| *v);
        expect.sort_by_key(|(_, v)| *v);
        prop_assert_eq!(seen, expect);
    }

    /// Random interleavings of sends, directed receives (reserve + take),
    /// and wildcard head consumption on one receiver: every sender's
    /// messages are consumed in exactly their send order, and a wildcard
    /// head is never a message already reserved by a directed receive.
    #[test]
    fn fifo_preserves_per_sender_order_under_mixed_consumption(
        seed in 0u64..1_000_000,
        nsenders in 1usize..6,
        nmsgs in 1usize..30,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let recv = 0usize;
        let mut slab: Slab<(usize, u64)> = Slab::new();
        let mut fifo = PairFifo::new(nsenders + 1);

        // Sent / consumed counters per sender (senders are procs 1..=n).
        let mut sent = vec![0u64; nsenders + 1];
        let mut consumed = vec![0u64; nsenders + 1];
        let total = nsenders * nmsgs;
        let mut done = 0usize;

        while done < total {
            let from = 1 + rng.gen_range(0..nsenders);
            let can_send = (sent[from] as usize) < nmsgs;
            let can_recv = consumed[from] < sent[from];
            if can_send && (!can_recv || rng.gen_bool(0.5)) {
                let seq = fifo.next_send_seq(from, recv);
                prop_assert_eq!(seq, sent[from], "send seqs are dense per pair");
                let h = slab.insert((from, seq));
                fifo.enqueue(from, recv, seq, h);
                sent[from] += 1;
            } else if can_recv {
                let expect = consumed[from];
                let h = if rng.gen_bool(0.5) {
                    // Directed receive: reserve the next in-order seq, then
                    // take it (possibly from mid-queue).
                    let seq = fifo.reserve_recv(from, recv);
                    prop_assert_eq!(seq, expect, "reservation is in send order");
                    fifo.take(from, recv, seq).expect("reserved message present")
                } else {
                    // Wildcard: this sender's head must be its oldest
                    // unreserved message.
                    let heads: HashMap<usize, Handle> = fifo.heads(recv).collect();
                    let h = *heads.get(&from).expect("pending sender has a head");
                    prop_assert_eq!(slab.get(h), Some(&(from, expect)));
                    let c = fifo.consume_head(from, recv);
                    prop_assert_eq!(c, Some(h));
                    h
                };
                let (f, seq) = slab.remove(h).expect("fifo handles are live");
                prop_assert_eq!(f, from);
                prop_assert_eq!(seq, expect, "sender {}'s order violated", from);
                consumed[from] += 1;
                done += 1;
            }
        }
        prop_assert!(slab.is_empty(), "all messages consumed");
        prop_assert!(fifo.heads(recv).next().is_none(), "no stray heads");
    }

    /// A directed reservation mid-stream never perturbs wildcard heads of
    /// other senders, and the reserved message stays takeable after any
    /// number of later sends on the same pair.
    #[test]
    fn reservation_is_stable_across_later_sends(
        seed in 0u64..1_000_000,
        later in 0usize..20,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut slab: Slab<u64> = Slab::new();
        let mut fifo = PairFifo::new(2);
        let seq0 = fifo.next_send_seq(1, 0);
        let h0 = slab.insert(seq0);
        fifo.enqueue(1, 0, seq0, h0);

        let r = fifo.reserve_recv(1, 0);
        prop_assert_eq!(r, seq0);
        // Any number of subsequent sends pile up behind the reservation.
        for _ in 0..later {
            let seq = fifo.next_send_seq(1, 0);
            let h = slab.insert(seq);
            fifo.enqueue(1, 0, seq, h);
            if rng.gen_bool(0.3) {
                // Wildcard head, if any, is never the reserved message.
                for (_, h) in fifo.heads(0) {
                    prop_assert!(h != h0, "reserved message leaked as a head");
                }
            }
        }
        let taken = fifo.take(1, 0, r).expect("reservation survives later sends");
        prop_assert_eq!(taken, h0);
        prop_assert_eq!(slab.remove(taken), Some(seq0));
    }
}
