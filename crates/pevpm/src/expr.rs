//! The symbolic expression language of PEVPM directives.
//!
//! Directive parameters are kept *symbolic* in `procnum`, `numprocs` and
//! user-defined parameters (paper §6: "important program and machine
//! parameters … are retained symbolically in PEVPM models, \[so\] those
//! models can be easily re-evaluated under different input and
//! environmental conditions"). This module provides the lexer, a Pratt
//! parser and an evaluator for that language.
//!
//! Grammar (C-like precedence):
//!
//! ```text
//! expr    := or
//! or      := and ('||' and)*
//! and     := cmp ('&&' cmp)*
//! cmp     := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/'|'%') unary)*
//! unary   := ('-'|'!') unary | atom
//! atom    := number | ident | ident '(' args ')' | '(' expr ')'
//! ```
//!
//! Booleans are represented as 1.0 / 0.0. Built-in functions: `min`, `max`,
//! `ceil`, `floor`, `log2`, `abs`, and `sizeof(<ctype>)` for the C type
//! sizes that appear in annotations like `xsize*sizeof(float)`.

use std::collections::HashMap;
use std::fmt;

/// A parsed expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Num(f64),
    /// Variable reference, resolved against the environment at eval time.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call.
    Call(String, Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder (C `%` semantics on truncated integers).
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Errors from parsing or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error: {}", self.message)
    }
}

impl std::error::Error for ExprError {}

fn err<T>(message: impl Into<String>) -> Result<T, ExprError> {
    Err(ExprError {
        message: message.into(),
    })
}

/// A fast, non-cryptographic string hasher (FxHash-style multiply-rotate
/// mix) for the interpreter environment. `Expr::Var` resolution happens on
/// the Monte-Carlo hot path — once per variable reference per directive per
/// replication — where SipHash's per-lookup cost is measurable. Environment
/// keys are short, trusted model identifiers, so HashDoS resistance buys
/// nothing here.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.mix(b as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Variable bindings for evaluation. Construct with `Env::default()` (the
/// custom hasher has no `new`).
pub type Env = HashMap<String, f64, std::hash::BuildHasherDefault<FastHasher>>;

/// Build an environment with the two standard PEVPM variables plus user
/// parameters.
pub fn standard_env(procnum: usize, numprocs: usize, params: &Env) -> Env {
    let mut env = params.clone();
    env.insert("procnum".into(), procnum as f64);
    env.insert("numprocs".into(), numprocs as f64);
    env
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<Tok>, ExprError> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    i += 1;
                }
                let s = &src[start..i];
                match s.parse::<f64>() {
                    Ok(v) => toks.push(Tok::Num(v)),
                    Err(_) => return err(format!("bad number {s:?}")),
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Ident(src[start..i].to_string()));
            }
            _ => {
                // Multi-char operators first.
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let op2 = ["==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .find(|&&o| o == two);
                if let Some(&op) = op2 {
                    toks.push(Tok::Op(op));
                    i += 2;
                    continue;
                }
                let one = &src[i..i + 1];
                let op1 = ["+", "-", "*", "/", "%", "<", ">", "!"]
                    .iter()
                    .find(|&&o| o == one);
                match op1 {
                    Some(&op) => {
                        toks.push(Tok::Op(op));
                        i += 1;
                    }
                    None => return err(format!("unexpected character {c:?}")),
                }
            }
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, ops: &[&'static str]) -> Option<&'static str> {
        if let Some(Tok::Op(o)) = self.peek() {
            if let Some(&hit) = ops.iter().find(|&&x| x == *o) {
                self.pos += 1;
                return Some(hit);
            }
        }
        None
    }

    fn parse_expr(&mut self) -> Result<Expr, ExprError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_and()?;
        while self.eat_op(&["||"]).is_some() {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_op(&["&&"]).is_some() {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ExprError> {
        let lhs = self.parse_add()?;
        if let Some(op) = self.eat_op(&["==", "!=", "<=", ">=", "<", ">"]) {
            let rhs = self.parse_add()?;
            let bop = match op {
                "==" => BinOp::Eq,
                "!=" => BinOp::Ne,
                "<=" => BinOp::Le,
                ">=" => BinOp::Ge,
                "<" => BinOp::Lt,
                ">" => BinOp::Gt,
                _ => unreachable!(),
            };
            return Ok(Expr::Binary(bop, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_mul()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.parse_mul()?;
            let bop = if op == "+" { BinOp::Add } else { BinOp::Sub };
            lhs = Expr::Binary(bop, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.parse_unary()?;
            let bop = match op {
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                _ => BinOp::Mod,
            };
            lhs = Expr::Binary(bop, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ExprError> {
        if self.eat_op(&["-"]).is_some() {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)));
        }
        if self.eat_op(&["!"]).is_some() {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ExprError> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1; // '('
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => return Ok(Expr::Call(name, args)),
                                _ => return err("expected ',' or ')' in argument list"),
                            }
                        }
                    }
                    self.pos += 1; // ')'
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Var(name))
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(e),
                    _ => err("expected ')'"),
                }
            }
            other => err(format!("unexpected token {other:?}")),
        }
    }
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding strength for the pretty-printer (higher binds tighter).
    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Var(name) => f.write_str(name),
            Expr::Unary(op, e) => {
                match op {
                    UnOp::Neg => f.write_str("-")?,
                    UnOp::Not => f.write_str("!")?,
                }
                e.fmt_prec(f, 6)
            }
            Expr::Binary(op, a, b) => {
                let p = op.precedence();
                if p < parent {
                    f.write_str("(")?;
                }
                a.fmt_prec(f, p)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: the right operand needs strictly higher
                // binding to avoid parens.
                b.fmt_prec(f, p + 1)?;
                if p < parent {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Parse an expression from source text.
pub fn parse(src: &str) -> Result<Expr, ExprError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return err("empty expression");
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr()?;
    if p.pos != p.toks.len() {
        return err(format!("trailing tokens after expression in {src:?}"));
    }
    Ok(e)
}

pub(crate) fn sizeof(arg: &Expr) -> Result<f64, ExprError> {
    let Expr::Var(ty) = arg else {
        return err("sizeof expects a type name");
    };
    match ty.as_str() {
        "char" | "int8_t" | "uint8_t" => Ok(1.0),
        "short" | "int16_t" | "uint16_t" => Ok(2.0),
        "int" | "float" | "int32_t" | "uint32_t" => Ok(4.0),
        "double" | "long" | "int64_t" | "uint64_t" | "size_t" => Ok(8.0),
        other => err(format!("sizeof: unknown type {other:?}")),
    }
}

impl Expr {
    /// Evaluate to a number under the given environment.
    pub fn eval(&self, env: &Env) -> Result<f64, ExprError> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Var(name) => env.get(name).copied().ok_or_else(|| ExprError {
                message: format!("unbound variable {name:?}"),
            }),
            Expr::Unary(op, e) => {
                let v = e.eval(env)?;
                Ok(match op {
                    UnOp::Neg => -v,
                    UnOp::Not => {
                        if v == 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                })
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logic first.
                match op {
                    BinOp::And => {
                        return Ok(if a.eval(env)? != 0.0 && b.eval(env)? != 0.0 {
                            1.0
                        } else {
                            0.0
                        })
                    }
                    BinOp::Or => {
                        return Ok(if a.eval(env)? != 0.0 || b.eval(env)? != 0.0 {
                            1.0
                        } else {
                            0.0
                        })
                    }
                    _ => {}
                }
                let x = a.eval(env)?;
                let y = b.eval(env)?;
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            return err("division by zero");
                        }
                        x / y
                    }
                    BinOp::Mod => {
                        let yi = y.trunc();
                        if yi == 0.0 {
                            return err("modulo by zero");
                        }
                        (x.trunc() as i64).rem_euclid(yi as i64) as f64
                    }
                    BinOp::Eq => (x == y) as u8 as f64,
                    BinOp::Ne => (x != y) as u8 as f64,
                    BinOp::Lt => (x < y) as u8 as f64,
                    BinOp::Le => (x <= y) as u8 as f64,
                    BinOp::Gt => (x > y) as u8 as f64,
                    BinOp::Ge => (x >= y) as u8 as f64,
                    BinOp::And | BinOp::Or => unreachable!(),
                })
            }
            Expr::Call(name, args) => {
                if name == "sizeof" {
                    if args.len() != 1 {
                        return err("sizeof takes exactly one argument");
                    }
                    return sizeof(&args[0]);
                }
                let vals: Result<Vec<f64>, _> = args.iter().map(|a| a.eval(env)).collect();
                let vals = vals?;
                match (name.as_str(), vals.as_slice()) {
                    ("min", [a, b]) => Ok(a.min(*b)),
                    ("max", [a, b]) => Ok(a.max(*b)),
                    ("ceil", [a]) => Ok(a.ceil()),
                    ("floor", [a]) => Ok(a.floor()),
                    ("abs", [a]) => Ok(a.abs()),
                    ("log2", [a]) => {
                        if *a <= 0.0 {
                            err("log2 of non-positive value")
                        } else {
                            Ok(a.log2())
                        }
                    }
                    _ => err(format!(
                        "unknown function {name:?} with {} args",
                        vals.len()
                    )),
                }
            }
        }
    }

    /// Evaluate as a boolean (non-zero = true).
    pub fn eval_bool(&self, env: &Env) -> Result<bool, ExprError> {
        Ok(self.eval(env)? != 0.0)
    }

    /// Evaluate as a non-negative integer (rounded).
    pub fn eval_usize(&self, env: &Env) -> Result<usize, ExprError> {
        let v = self.eval(env)?;
        if !v.is_finite() || v < -0.5 {
            return err(format!("expected a non-negative integer, got {v}"));
        }
        Ok(v.round() as usize)
    }

    /// The set of variables referenced by this expression (for model
    /// introspection and parameter checking).
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(name, args) => {
                // sizeof's argument is a type name, not a variable.
                if name != "sizeof" {
                    for a in args {
                        a.collect_vars(out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str, bindings: &[(&str, f64)]) -> f64 {
        let env: Env = bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        parse(src).unwrap().eval(&env).unwrap()
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(ev("1 + 2 * 3", &[]), 7.0);
        assert_eq!(ev("(1 + 2) * 3", &[]), 9.0);
        assert_eq!(ev("10 - 4 - 3", &[]), 3.0);
        assert_eq!(ev("2 * 3 % 4", &[]), 2.0);
        assert_eq!(ev("-2 * 3", &[]), -6.0);
    }

    #[test]
    fn division_and_scientific_notation() {
        assert_eq!(ev("3.24 / 4", &[]), 0.81);
        assert_eq!(ev("1e-3 * 2", &[]), 0.002);
        assert_eq!(ev("2.5e2", &[]), 250.0);
    }

    #[test]
    fn variables_resolve() {
        assert_eq!(ev("procnum % 2 == 0", &[("procnum", 4.0)]), 1.0);
        assert_eq!(ev("procnum % 2 == 0", &[("procnum", 5.0)]), 0.0);
        assert_eq!(ev("3.24 / numprocs", &[("numprocs", 8.0)]), 0.405);
    }

    #[test]
    fn paper_annotation_expressions() {
        // The exact expressions from Figure 5.
        assert_eq!(ev("xsize*sizeof(float)", &[("xsize", 256.0)]), 1024.0);
        assert_eq!(ev("procnum != 0", &[("procnum", 0.0)]), 0.0);
        assert_eq!(
            ev(
                "procnum != numprocs-1",
                &[("procnum", 7.0), ("numprocs", 8.0)]
            ),
            0.0
        );
        assert_eq!(ev("procnum+1", &[("procnum", 3.0)]), 4.0);
        assert_eq!(ev("procnum-1", &[("procnum", 3.0)]), 2.0);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("1 < 2 && 2 < 3", &[]), 1.0);
        assert_eq!(ev("1 < 2 && 2 > 3", &[]), 0.0);
        assert_eq!(ev("1 > 2 || 2 < 3", &[]), 1.0);
        assert_eq!(ev("!(1 == 1)", &[]), 0.0);
        assert_eq!(ev("3 >= 3", &[]), 1.0);
        assert_eq!(ev("3 <= 2", &[]), 0.0);
        assert_eq!(ev("1 != 2", &[]), 1.0);
    }

    #[test]
    fn modulo_is_euclidean_on_negatives() {
        // (procnum - 1) % numprocs must wrap for ring computations.
        assert_eq!(ev("(0 - 1) % 8", &[]), 7.0);
    }

    #[test]
    fn builtin_functions() {
        assert_eq!(ev("min(3, 5)", &[]), 3.0);
        assert_eq!(ev("max(3, 5)", &[]), 5.0);
        assert_eq!(ev("ceil(2.1)", &[]), 3.0);
        assert_eq!(ev("floor(2.9)", &[]), 2.0);
        assert_eq!(ev("abs(0-4)", &[]), 4.0);
        assert_eq!(ev("log2(8)", &[]), 3.0);
        assert_eq!(ev("sizeof(double)", &[]), 8.0);
        assert_eq!(ev("sizeof(char)", &[]), 1.0);
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("foo(").is_err());
        assert!(parse("1 @ 2").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("1 2").is_err(), "trailing tokens must error");

        let env = Env::default();
        assert!(parse("nope").unwrap().eval(&env).is_err());
        assert!(parse("1/0").unwrap().eval(&env).is_err());
        assert!(parse("5 % 0").unwrap().eval(&env).is_err());
        assert!(parse("log2(0)").unwrap().eval(&env).is_err());
        assert!(parse("sizeof(quux)").unwrap().eval(&env).is_err());
        assert!(parse("widget(1)").unwrap().eval(&env).is_err());
    }

    #[test]
    fn eval_usize_validates() {
        let env = Env::default();
        assert_eq!(parse("1000").unwrap().eval_usize(&env).unwrap(), 1000);
        assert_eq!(parse("3.6").unwrap().eval_usize(&env).unwrap(), 4);
        assert!(parse("0-5").unwrap().eval_usize(&env).is_err());
    }

    #[test]
    fn variables_are_reported() {
        let e = parse("procnum % 2 == 0 && xsize*sizeof(float) > numprocs").unwrap();
        assert_eq!(e.variables(), vec!["numprocs", "procnum", "xsize"]);
    }

    #[test]
    fn standard_env_binds_proc_vars() {
        let params: Env = [("xsize".to_string(), 256.0)].into_iter().collect();
        let env = standard_env(3, 16, &params);
        assert_eq!(env["procnum"], 3.0);
        assert_eq!(env["numprocs"], 16.0);
        assert_eq!(env["xsize"], 256.0);
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "procnum % 2 == 0 && procnum != numprocs - 1",
            "xsize*sizeof(float)",
            "min(a, b) + max(c, -d)",
            "!(a < b) || c >= 2",
            "10 - 4 - 3",
            "2 * (3 % 4)",
        ] {
            let e = parse(src).unwrap();
            let printed = e.to_string();
            let back = parse(&printed)
                .unwrap_or_else(|err| panic!("reprint of {src:?} -> {printed:?} fails: {err}"));
            assert_eq!(e, back, "{src:?} printed as {printed:?}");
        }
    }

    #[test]
    fn display_respects_associativity() {
        // 10 - (4 - 3) must keep its parens; (10 - 4) - 3 must not.
        let e = parse("10 - (4 - 3)").unwrap();
        assert_eq!(e.to_string(), "10 - (4 - 3)");
        let e = parse("10 - 4 - 3").unwrap();
        assert_eq!(e.to_string(), "10 - 4 - 3");
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        let env = Env::default();
        // RHS divides by zero but LHS decides.
        assert_eq!(parse("0 && 1/0").unwrap().eval(&env).unwrap(), 0.0);
        assert_eq!(parse("1 || 1/0").unwrap().eval(&env).unwrap(), 1.0);
    }
}
