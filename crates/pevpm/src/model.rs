//! The PEVPM program model: directives composed into an executable AST.
//!
//! §5 of the paper: "PEVPM is based on a set of parallel program
//! primitives, or building blocks, that can be used to compose the
//! computation and communication structure of any message-passing parallel
//! program." The primitives are:
//!
//! - [`Stmt::Loop`] — bounded iteration (`// PEVPM Loop iterations = N`);
//! - [`Stmt::Runon`] — condition-guarded branches, one block per condition
//!   (`// PEVPM Runon c1 = … & c2 = …`);
//! - [`Stmt::Message`] — a point-to-point transfer with symbolic size,
//!   source and destination;
//! - [`Stmt::Serial`] — a serial computation of symbolic duration;
//! - [`Stmt::Collective`] — barrier/broadcast/reduce/alltoall extension
//!   primitives (beyond the paper's Figure 5, used by the FFT and task-farm
//!   models).

use crate::expr::{Env, Expr, ExprError};
use std::collections::HashMap;

/// Message kinds a [`Stmt::Message`] directive can describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Blocking standard-mode send (`type = MPI_Send`).
    Send,
    /// Nonblocking send (`type = MPI_Isend`).
    Isend,
    /// Blocking receive (`type = MPI_Recv`).
    Recv,
    /// Nonblocking receive (`type = MPI_Irecv`); must carry a `handle`
    /// that a later [`Stmt::Wait`] names. Between the post and the wait
    /// the process keeps executing — communication/computation overlap.
    Irecv,
}

impl MsgKind {
    /// Parse the `type =` value of a Message directive.
    pub fn from_mpi_name(s: &str) -> Option<MsgKind> {
        match s {
            "MPI_Send" | "MPI_Ssend" | "MPI_Bsend" => Some(MsgKind::Send),
            "MPI_Isend" => Some(MsgKind::Isend),
            "MPI_Recv" => Some(MsgKind::Recv),
            "MPI_Irecv" => Some(MsgKind::Irecv),
            _ => None,
        }
    }
}

/// Collective operations available as model extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollOp {
    /// Barrier synchronisation.
    Barrier,
    /// Broadcast from a root.
    Bcast,
    /// Reduction to a root.
    Reduce,
    /// Reduction + broadcast.
    Allreduce,
    /// Personalised all-to-all exchange.
    Alltoall,
}

/// One PEVPM directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Repeat `body` `count` times. If `var` is set, it is bound to the
    /// 0-based iteration index in the body's environment (an extension
    /// over the paper's Figure 5 syntax, used for round-robin patterns).
    Loop {
        /// Iteration count (evaluated per process).
        count: Expr,
        /// Optional induction-variable name.
        var: Option<String>,
        /// Directives in the loop body.
        body: Vec<Stmt>,
    },
    /// Guarded branches: the first branch whose condition holds runs; a
    /// process matching no branch skips the statement.
    Runon {
        /// `(condition, block)` pairs in declaration order.
        branches: Vec<(Expr, Vec<Stmt>)>,
    },
    /// A point-to-point message event.
    Message {
        /// Send/Isend/Recv/Irecv.
        kind: MsgKind,
        /// Message size in bytes.
        size: Expr,
        /// Sending process.
        from: Expr,
        /// Receiving process.
        to: Expr,
        /// Request handle bound by an `Irecv` (ignored for other kinds).
        handle: Option<String>,
        /// Source label for loss attribution (e.g. `"jacobi.c:23"`).
        label: Option<String>,
    },
    /// Complete a nonblocking receive: block until the message posted
    /// under `handle` has arrived and consume it.
    Wait {
        /// Handle name bound by a preceding `MPI_Irecv` message.
        handle: String,
        /// Source label for attribution.
        label: Option<String>,
    },
    /// A serial computation segment.
    Serial {
        /// Duration in seconds.
        time: Expr,
        /// Optional machine label (`Serial on perseus time = …`).
        machine: Option<String>,
        /// Source label for attribution.
        label: Option<String>,
    },
    /// A collective operation involving every process.
    Collective {
        /// Which collective.
        op: CollOp,
        /// Per-process data size in bytes.
        size: Expr,
        /// Source label for attribution.
        label: Option<String>,
    },
}

/// A complete PEVPM model: the directive program plus its symbolic
/// parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    /// Top-level directives.
    pub stmts: Vec<Stmt>,
    /// Default parameter bindings (overridable at evaluation time).
    pub params: Env,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Builder: set a parameter.
    pub fn with_param(mut self, name: &str, value: f64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Builder: append a top-level statement.
    pub fn with_stmt(mut self, stmt: Stmt) -> Self {
        self.stmts.push(stmt);
        self
    }

    /// All variables referenced anywhere in the model, minus the standard
    /// `procnum`/`numprocs`. Every returned name must be bound by `params`
    /// (or at evaluation time) for the model to evaluate.
    pub fn free_variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        fn walk(stmts: &[Stmt], vars: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Loop { count, var, body } => {
                        vars.extend(count.variables());
                        // The induction variable is bound by the loop, not
                        // a free model parameter.
                        let mut inner = Vec::new();
                        walk(body, &mut inner);
                        if let Some(v) = var {
                            inner.retain(|x| x != v);
                        }
                        vars.extend(inner);
                    }
                    Stmt::Runon { branches } => {
                        for (c, b) in branches {
                            vars.extend(c.variables());
                            walk(b, vars);
                        }
                    }
                    Stmt::Message { size, from, to, .. } => {
                        vars.extend(size.variables());
                        vars.extend(from.variables());
                        vars.extend(to.variables());
                    }
                    Stmt::Serial { time, .. } => vars.extend(time.variables()),
                    Stmt::Collective { size, .. } => vars.extend(size.variables()),
                    Stmt::Wait { .. } => {}
                }
            }
        }
        walk(&self.stmts, &mut vars);
        vars.retain(|v| v != "procnum" && v != "numprocs");
        vars.sort();
        vars.dedup();
        vars
    }

    /// Check that every free variable is bound by `params` plus `extra`.
    pub fn check_bindings(&self, extra: &Env) -> Result<(), ExprError> {
        for v in self.free_variables() {
            if !self.params.contains_key(&v) && !extra.contains_key(&v) {
                return Err(ExprError {
                    message: format!("unbound model parameter {v:?}"),
                });
            }
        }
        Ok(())
    }

    /// Count the statements in the model (all nesting levels).
    pub fn num_stmts(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| {
                    1 + match s {
                        Stmt::Loop { body, .. } => count(body),
                        Stmt::Runon { branches } => branches.iter().map(|(_, b)| count(b)).sum(),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.stmts)
    }
}

/// Shorthand constructors used by the programmatic app models and tests.
pub mod build {
    use super::*;
    use crate::expr::parse;

    /// Parse an expression, panicking on error (builder convenience).
    pub fn e(src: &str) -> Expr {
        parse(src).unwrap_or_else(|err| panic!("bad expression {src:?}: {err}"))
    }

    /// A `Loop` statement.
    pub fn looped(count: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            count: e(count),
            var: None,
            body,
        }
    }

    /// A `Loop` with an induction variable bound in the body.
    pub fn looped_var(count: &str, var: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            count: e(count),
            var: Some(var.to_string()),
            body,
        }
    }

    /// A single-branch `Runon`.
    pub fn runon(cond: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::Runon {
            branches: vec![(e(cond), body)],
        }
    }

    /// A two-branch `Runon` (if/else).
    pub fn runon2(c1: &str, b1: Vec<Stmt>, c2: &str, b2: Vec<Stmt>) -> Stmt {
        Stmt::Runon {
            branches: vec![(e(c1), b1), (e(c2), b2)],
        }
    }

    /// A blocking-send message.
    pub fn send(size: &str, from: &str, to: &str) -> Stmt {
        Stmt::Message {
            kind: MsgKind::Send,
            size: e(size),
            from: e(from),
            to: e(to),
            handle: None,
            label: None,
        }
    }

    /// A nonblocking-send message.
    pub fn isend(size: &str, from: &str, to: &str) -> Stmt {
        Stmt::Message {
            kind: MsgKind::Isend,
            size: e(size),
            from: e(from),
            to: e(to),
            handle: None,
            label: None,
        }
    }

    /// A blocking receive.
    pub fn recv(size: &str, from: &str, to: &str) -> Stmt {
        Stmt::Message {
            kind: MsgKind::Recv,
            size: e(size),
            from: e(from),
            to: e(to),
            handle: None,
            label: None,
        }
    }

    /// A nonblocking receive bound to a request handle.
    pub fn irecv(size: &str, from: &str, to: &str, handle: &str) -> Stmt {
        Stmt::Message {
            kind: MsgKind::Irecv,
            size: e(size),
            from: e(from),
            to: e(to),
            handle: Some(handle.to_string()),
            label: None,
        }
    }

    /// Wait for a nonblocking receive.
    pub fn wait(handle: &str) -> Stmt {
        Stmt::Wait {
            handle: handle.to_string(),
            label: None,
        }
    }

    /// A serial computation.
    pub fn serial(time: &str) -> Stmt {
        Stmt::Serial {
            time: e(time),
            machine: None,
            label: None,
        }
    }

    /// A collective.
    pub fn collective(op: CollOp, size: &str) -> Stmt {
        Stmt::Collective {
            op,
            size: e(size),
            label: None,
        }
    }

    /// Attach a label to a statement (for loss attribution).
    pub fn labelled(mut stmt: Stmt, label: &str) -> Stmt {
        match &mut stmt {
            Stmt::Message { label: l, .. }
            | Stmt::Serial { label: l, .. }
            | Stmt::Collective { label: l, .. }
            | Stmt::Wait { label: l, .. } => *l = Some(label.to_string()),
            _ => {}
        }
        stmt
    }
}

/// Parameter map type re-export for convenience.
pub type Params = HashMap<String, f64>;

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn jacobi_like() -> Model {
        Model::new().with_param("xsize", 256.0).with_stmt(looped(
            "iterations",
            vec![
                runon2(
                    "procnum % 2 == 0",
                    vec![
                        runon(
                            "procnum != 0",
                            vec![send("xsize*sizeof(float)", "procnum", "procnum-1")],
                        ),
                        recv("xsize*sizeof(float)", "procnum+1", "procnum"),
                    ],
                    "procnum % 2 != 0",
                    vec![
                        recv("xsize*sizeof(float)", "procnum-1", "procnum"),
                        send("xsize*sizeof(float)", "procnum", "procnum-1"),
                    ],
                ),
                serial("3.24/numprocs"),
            ],
        ))
    }

    #[test]
    fn free_variables_exclude_standard_names() {
        let m = jacobi_like();
        assert_eq!(m.free_variables(), vec!["iterations", "xsize"]);
    }

    #[test]
    fn check_bindings_finds_missing_params() {
        let m = jacobi_like();
        // xsize bound by params; iterations must come from extra.
        assert!(m.check_bindings(&Env::default()).is_err());
        let extra: Env = [("iterations".to_string(), 10.0)].into_iter().collect();
        assert!(m.check_bindings(&extra).is_ok());
    }

    #[test]
    fn num_stmts_counts_nested() {
        let m = jacobi_like();
        // loop + runon2 + (runon + send) + recv + (recv + send) + serial = 8
        assert_eq!(m.num_stmts(), 8);
    }

    #[test]
    fn mpi_name_parsing() {
        assert_eq!(MsgKind::from_mpi_name("MPI_Send"), Some(MsgKind::Send));
        assert_eq!(MsgKind::from_mpi_name("MPI_Isend"), Some(MsgKind::Isend));
        assert_eq!(MsgKind::from_mpi_name("MPI_Recv"), Some(MsgKind::Recv));
        assert_eq!(MsgKind::from_mpi_name("MPI_Alltoallw"), None);
    }

    #[test]
    fn labels_attach_to_events() {
        let s = labelled(send("8", "0", "1"), "line 12");
        match s {
            Stmt::Message { label, .. } => assert_eq!(label.as_deref(), Some("line 12")),
            _ => unreachable!(),
        }
    }
}
