//! Adaptive-replication statistics: Student-t confidence intervals, the
//! sequential stopping rule, and a non-stationarity drift detector.
//!
//! "MPI Benchmarking Revisited" (Hunold & Carpen-Amarie, PAPERS.md)
//! criticises fixed replication counts: easy measurements waste
//! repetitions while hard ones stop before their mean has stabilised.
//! This module supplies the pieces the Monte-Carlo engine
//! ([`crate::vm::monte_carlo`]) needs to stop *adaptively* instead —
//! run replications in deterministic seed order until the relative
//! Student-t confidence-interval half-width on the predicted mean drops
//! below a requested precision, bounded by `min_reps`/`max_reps`.
//!
//! Everything here is pure `f64` arithmetic over the online Welford
//! accumulator ([`pevpm_dist::Summary`]) — no RNG, no allocation on the
//! hot path, and no external dependency: the Student-t quantile is
//! computed from the regularised incomplete beta function (continued
//! fraction, Lentz's algorithm) with a bisection inversion. The same
//! inputs therefore always produce the same stopping decision, which is
//! what makes adaptive mode deterministic for a given (seed, precision).

use pevpm_dist::Summary;

/// Two-sided significance used by [`detect_drift`] when the caller does
/// not pick one. Deliberately strict: the drift detector is a warning
/// light for non-stationary replication streams (a bug in seed
/// derivation, a timing table mutated mid-run), not a gate, so false
/// positives are worse than low power.
pub const DRIFT_ALPHA: f64 = 1e-3;

/// Natural log of the gamma function (Lanczos approximation, g = 7).
/// Accurate to ~1e-13 over the arguments this module uses (df/2 ≥ 0.5).
fn ln_gamma(x: f64) -> f64 {
    // Published Lanczos(g=7) coefficients, kept verbatim; the trailing
    // digits round into the nearest f64.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate
        // range.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Continued-fraction kernel of the incomplete beta function (modified
/// Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularised incomplete beta function `I_x(a, b)`.
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    // Use the expansion that converges fastest on each side of the mean.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let tail = 0.5 * reg_inc_beta(df / 2.0, 0.5, df / (df + t * t));
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Two-sided Student-t critical value: the `t` such that a fraction
/// `confidence` of the distribution with `df` degrees of freedom lies in
/// `[-t, t]`. Inverted by bisection on the CDF — ~60 iterations of pure
/// arithmetic, bit-reproducible on a given host.
pub fn student_t_crit_df(df: f64, confidence: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let target = 1.0 - (1.0 - confidence) / 2.0;
    // Expand the bracket until it contains the quantile (df = 1 at
    // 99.9% needs t ≈ 636, so start wide enough to rarely loop).
    let mut hi = 64.0;
    while student_t_cdf(hi, df) < target && hi < 1e12 {
        hi *= 4.0;
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// [`student_t_crit_df`] for an integer degrees-of-freedom count (the
/// usual case: `n - 1` for a sample of `n` replications).
pub fn student_t_crit(df: usize, confidence: f64) -> f64 {
    student_t_crit_df(df as f64, confidence)
}

/// Absolute confidence-interval half-width of the mean of `n` samples
/// with sample standard deviation `sd`: `t_{conf, n-1} · sd / √n`.
/// Undefined below two samples — returns `+∞` so no stopping rule can
/// fire on it (the `--reps 1` half-width has no degrees of freedom).
pub fn ci_half_width(n: u64, sd: f64, confidence: f64) -> f64 {
    if n < 2 {
        return f64::INFINITY;
    }
    student_t_crit((n - 1) as usize, confidence) * sd / (n as f64).sqrt()
}

/// The relative CI half-width of a Welford summary: half-width divided
/// by `|mean|`. `None` below two samples or at an exactly-zero mean
/// (relative precision is meaningless there).
pub fn rel_half_width(s: &Summary, confidence: f64) -> Option<f64> {
    let mean = s.mean()?;
    if s.count() < 2 || mean == 0.0 {
        return None;
    }
    let sd = s.sample_variance()?.sqrt();
    Some(ci_half_width(s.count(), sd, confidence) / mean.abs())
}

/// The sequential stopping rule: run replications (in deterministic seed
/// order) until the relative CI half-width on the mean is at most
/// `precision`, no earlier than `min_reps` and no later than `max_reps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Target relative half-width (e.g. `0.05` = stop when the
    /// `confidence` CI is within ±5% of the mean).
    pub precision: f64,
    /// Never stop before this many replications (≥ 2: the half-width has
    /// no degrees of freedom below two samples).
    pub min_reps: usize,
    /// Hard ceiling: stop here even if the precision was not reached
    /// (the report then says so).
    pub max_reps: usize,
    /// CI confidence level (default 0.95).
    pub confidence: f64,
}

impl AdaptivePolicy {
    /// Defaults for a target precision: 4–64 replications at 95%
    /// confidence.
    pub fn new(precision: f64) -> Self {
        AdaptivePolicy {
            precision,
            min_reps: 4,
            max_reps: 64,
            confidence: 0.95,
        }
    }

    /// Builder: set the minimum replication count.
    pub fn with_min_reps(mut self, n: usize) -> Self {
        self.min_reps = n;
        self
    }

    /// Builder: set the maximum replication count.
    pub fn with_max_reps(mut self, n: usize) -> Self {
        self.max_reps = n;
        self
    }

    /// Builder: set the CI confidence level.
    pub fn with_confidence(mut self, c: f64) -> Self {
        self.confidence = c;
        self
    }

    /// Check the policy's numeric constraints. `min_reps < 2` is the
    /// classic `--reps 1` trap: a one-sample half-width is undefined
    /// (0/0 degrees of freedom), so it is rejected here instead of
    /// surfacing as NaN downstream.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.precision.is_finite() && self.precision > 0.0) {
            return Err(format!(
                "precision must be a positive finite number, got {}",
                self.precision
            ));
        }
        if self.min_reps < 2 {
            return Err(format!(
                "min-reps must be at least 2 (a {}-sample CI half-width is undefined)",
                self.min_reps
            ));
        }
        if self.max_reps < self.min_reps {
            return Err(format!(
                "max-reps ({}) must be at least min-reps ({})",
                self.max_reps, self.min_reps
            ));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(format!(
                "confidence must be in (0, 1), got {}",
                self.confidence
            ));
        }
        Ok(())
    }

    /// Whether the rule is satisfied by the samples accumulated so far
    /// (ignoring the `min_reps`/`max_reps` bounds — the engine applies
    /// those over prefix indices).
    pub fn satisfied(&self, s: &Summary) -> bool {
        rel_half_width(s, self.confidence).is_some_and(|rel| rel <= self.precision)
    }

    /// The number of replications the rule stops at for the sample
    /// stream `xs`, folding prefixes in order exactly as the engine
    /// does: the first index `n ∈ [min_reps, max_reps]` whose prefix
    /// satisfies the precision, else `min(xs.len(), max_reps)`. This is
    /// the *reference* stopping rule the conformance oracle replays
    /// against the engine's reported rep count.
    pub fn stop_point(&self, xs: &[f64]) -> usize {
        let cap = xs.len().min(self.max_reps);
        let mut s = Summary::new();
        for (i, &x) in xs.iter().take(cap).enumerate() {
            s.add(x);
            let n = i + 1;
            if n >= self.min_reps && self.satisfied(&s) {
                return n;
            }
        }
        cap
    }
}

/// What adaptive mode actually did, reported in
/// [`crate::vm::McPrediction::adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// The requested relative precision.
    pub precision: f64,
    /// The CI confidence level used.
    pub confidence: f64,
    /// The policy's replication floor.
    pub min_reps: usize,
    /// The policy's replication ceiling (after any server-side cap).
    pub max_reps: usize,
    /// Replications actually run (successes + failures).
    pub reps: usize,
    /// Achieved relative CI half-width over the surviving replications
    /// (`+∞` when fewer than two survived or the mean is zero).
    pub rel_half_width: f64,
    /// Whether the precision target was met before `max_reps`.
    pub converged: bool,
    /// Whether the drift detector flagged the replication stream as
    /// non-stationary (see [`detect_drift`]).
    pub drift: bool,
}

impl AdaptiveReport {
    /// Replications the adaptive rule did *not* have to run, relative to
    /// the ceiling a fixed-reps caller would have paid.
    pub fn reps_saved(&self) -> usize {
        self.max_reps.saturating_sub(self.reps)
    }
}

/// Welch's two-sample t statistic between the first and second half of
/// `xs`, with its Welch–Satterthwaite degrees of freedom. `None` when a
/// half has fewer than two samples, or when both halves have zero
/// variance (identical constants drift by definition only if the means
/// differ — that case returns `t = ∞`).
pub fn drift_statistic(xs: &[f64]) -> Option<(f64, f64)> {
    let n = xs.len();
    if n < 4 {
        return None;
    }
    let (first, second) = xs.split_at(n / 2);
    let a = Summary::from_slice(first);
    let b = Summary::from_slice(second);
    let (ma, mb) = (a.mean()?, b.mean()?);
    let (va, vb) = (a.sample_variance()?, b.sample_variance()?);
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let sa = va / na;
    let sb = vb / nb;
    let denom = (sa + sb).sqrt();
    if denom == 0.0 {
        return if ma == mb {
            Some((0.0, (na + nb - 2.0).max(1.0)))
        } else {
            Some((f64::INFINITY, (na + nb - 2.0).max(1.0)))
        };
    }
    let t = (mb - ma) / denom;
    // Welch–Satterthwaite effective degrees of freedom.
    let df = (sa + sb) * (sa + sb) / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
    Some((t, df.max(1.0)))
}

/// Two-window drift detector: does the second half of the replication
/// stream have a different mean than the first, at two-sided
/// significance `alpha`? A stationary stream of independent replications
/// fires with probability ≈ `alpha`; a stream whose underlying
/// distribution shifted mid-run fires with power growing in the shift.
pub fn detect_drift(xs: &[f64], alpha: f64) -> bool {
    match drift_statistic(xs) {
        None => false,
        Some((t, df)) => {
            if t.is_infinite() {
                return true;
            }
            t.abs() > student_t_crit_df(df, 1.0 - alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook two-sided critical values (Student 1908 / standard
    /// tables), matched to 3 decimal places.
    #[test]
    fn t_critical_values_match_the_tables() {
        let cases = [
            (1, 0.95, 12.706),
            (2, 0.95, 4.303),
            (4, 0.95, 2.776),
            (9, 0.95, 2.262),
            (10, 0.95, 2.228),
            (30, 0.95, 2.042),
            (120, 0.95, 1.980),
            (10, 0.99, 3.169),
            (5, 0.90, 2.015),
        ];
        for (df, conf, expect) in cases {
            let got = student_t_crit(df, conf);
            assert!(
                (got - expect).abs() < 1.5e-3,
                "t({df}, {conf}) = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn t_cdf_is_symmetric_and_monotone() {
        for &df in &[1.0, 3.0, 7.5, 40.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            let mut prev = 0.0;
            for i in -40..=40 {
                let t = i as f64 / 4.0;
                let c = student_t_cdf(t, df);
                assert!(c >= prev, "cdf not monotone at t={t}, df={df}");
                let mirrored = student_t_cdf(-t, df);
                assert!((c + mirrored - 1.0).abs() < 1e-12, "asymmetry at t={t}");
                prev = c;
            }
        }
    }

    #[test]
    fn half_width_is_infinite_below_two_samples() {
        assert!(ci_half_width(0, 1.0, 0.95).is_infinite());
        assert!(ci_half_width(1, 1.0, 0.95).is_infinite());
        assert!(ci_half_width(2, 1.0, 0.95).is_finite());
        let mut s = Summary::new();
        s.add(3.0);
        assert_eq!(rel_half_width(&s, 0.95), None, "one sample has no CI");
        s.add(3.5);
        assert!(rel_half_width(&s, 0.95).unwrap() > 0.0);
    }

    #[test]
    fn policy_validation_rejects_the_degenerate_corners() {
        assert!(AdaptivePolicy::new(0.05).validate().is_ok());
        assert!(AdaptivePolicy::new(0.0).validate().is_err());
        assert!(AdaptivePolicy::new(f64::NAN).validate().is_err());
        assert!(AdaptivePolicy::new(0.05)
            .with_min_reps(1)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0.05)
            .with_min_reps(8)
            .with_max_reps(4)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0.05)
            .with_confidence(1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn stop_point_is_the_first_qualifying_prefix() {
        // A stream that tightens: wildly spread early samples, then a
        // long run of near-identical values.
        let mut xs = vec![1.0, 2.0, 1.5, 0.5];
        xs.extend(std::iter::repeat_n(1.25, 60));
        let policy = AdaptivePolicy::new(0.05).with_min_reps(2).with_max_reps(64);
        let stop = policy.stop_point(&xs);
        assert!(stop >= policy.min_reps && stop <= policy.max_reps);
        // Minimality: no earlier prefix in bounds qualifies, the chosen
        // one does (or the cap was hit).
        let mut s = Summary::new();
        for &x in &xs[..stop] {
            s.add(x);
        }
        for n in policy.min_reps..stop {
            let mut p = Summary::new();
            for &x in &xs[..n] {
                p.add(x);
            }
            assert!(!policy.satisfied(&p), "prefix {n} already satisfied");
        }
        if stop < policy.max_reps {
            assert!(policy.satisfied(&s), "stop at {stop} without satisfaction");
        }
        // Constant streams stop at the floor.
        let flat = vec![2.0; 32];
        assert_eq!(policy.stop_point(&flat), policy.min_reps);
    }

    #[test]
    fn drift_fires_on_a_shift_but_not_on_a_constant_stream() {
        let stationary: Vec<f64> = (0..40)
            .map(|i| 10.0 + ((i * 7) % 5) as f64 * 0.01)
            .collect();
        assert!(!detect_drift(&stationary, DRIFT_ALPHA));
        let mut shifted = stationary.clone();
        for x in shifted.iter_mut().skip(20) {
            *x += 5.0;
        }
        assert!(detect_drift(&shifted, DRIFT_ALPHA));
        // Two identical constants: no drift; differing constants: drift.
        assert!(!detect_drift(&[1.0; 10], DRIFT_ALPHA));
        let mut split = vec![1.0; 5];
        split.extend(vec![2.0; 5]);
        assert!(detect_drift(&split, DRIFT_ALPHA));
        // Too short to judge.
        assert!(!detect_drift(&[1.0, 2.0, 3.0], DRIFT_ALPHA));
    }
}
