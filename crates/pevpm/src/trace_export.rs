//! Chrome-trace export of predicted timelines.
//!
//! Converts a [`Prediction`] recorded with
//! [`EvalConfig::record_timeline`](crate::vm::EvalConfig::record_timeline)
//! into the `trace_event` format via [`pevpm_obs::chrome`], under the
//! workspace convention **pid 1 = "PEVPM predicted"** with one thread row
//! per virtual process. Merge with `pevpm_mpisim::trace::chrome_trace` to
//! get the paper's predicted-vs-measured comparison in one Perfetto view.

use crate::vm::Prediction;
use pevpm_obs::chrome::{ChromeTrace, Span, PID_PREDICTED};

/// Build a Chrome trace from a prediction's recorded timelines.
///
/// Span names prefer the directive label (so the flamegraph slices carry
/// the same names as the loss report); unlabelled spans fall back to the
/// span-kind category. Timestamps are virtual seconds scaled to
/// microseconds, the unit the trace viewers expect.
pub fn chrome_trace(pred: &Prediction) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_process(PID_PREDICTED, "PEVPM predicted");
    for (p, spans) in pred.timeline.iter().enumerate() {
        trace.name_thread(PID_PREDICTED, p as u32, &format!("proc {p}"));
        for s in spans {
            let cat = s.kind.category();
            trace.push(Span {
                pid: PID_PREDICTED,
                tid: p as u32,
                name: s.label.clone().unwrap_or_else(|| cat.to_string()),
                cat: cat.to_string(),
                ts_us: s.start * 1e6,
                dur_us: (s.end - s.start) * 1e6,
                args: vec![("phase".into(), cat.to_string())],
            });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build::*;
    use crate::model::Model;
    use crate::timing::TimingModel;
    use crate::vm::{evaluate, EvalConfig};

    fn predicted() -> Prediction {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![serial("1.0"), labelled(send("100", "0", "1"), "halo-send")],
            "procnum == 1",
            vec![labelled(recv("100", "0", "1"), "halo-recv")],
        ));
        let cfg = EvalConfig::new(2).with_timeline();
        evaluate(&m, &cfg, &TimingModel::hockney(100e-6, 12.5e6)).unwrap()
    }

    #[test]
    fn exports_valid_trace_with_labels() {
        let pred = predicted();
        assert!(!pred.timeline.is_empty());
        let trace = chrome_trace(&pred);
        assert!(!trace.is_empty());
        let js = trace.to_json();
        let n = pevpm_obs::chrome::validate(&js).expect("schema-valid");
        assert_eq!(n, trace.len());
        assert!(js.contains("halo-recv"), "{js}");
        assert!(js.contains("PEVPM predicted"));
    }

    #[test]
    fn timeline_off_by_default_gives_empty_trace() {
        let m = Model::new().with_stmt(serial("1.0"));
        let pred = evaluate(
            &m,
            &EvalConfig::new(2),
            &TimingModel::hockney(100e-6, 12.5e6),
        )
        .unwrap();
        assert!(pred.timeline.is_empty());
        assert!(chrome_trace(&pred).is_empty());
    }
}
