//! The PEVPM annotation extractor.
//!
//! §5–6 of the paper: PEVPM directives "can be used to either annotate
//! existing source code or to express some algorithmic idea in a standalone
//! manner", and the translation of an annotated program into a model "could
//! easily be carried out by an automated compiler". This module *is* that
//! automation for the annotation syntax of Figure 5: it scans a C-like
//! source file for `// PEVPM` comment lines and builds a [`Model`].
//!
//! Recognised directives:
//!
//! ```text
//! // PEVPM Loop iterations = <expr>
//! // PEVPM Runon c1 = <expr>
//! // PEVPM &     c2 = <expr>           (any number of conditions)
//! // PEVPM Message type = MPI_Send|MPI_Isend|MPI_Recv
//! // PEVPM &       size = <expr>
//! // PEVPM &       from = <expr>
//! // PEVPM &       to   = <expr>
//! // PEVPM Serial [on <machine>] time = <expr>
//! // PEVPM Collective op = barrier|bcast|reduce|allreduce|alltoall size = <expr>
//! // PEVPM {   … block open (Loop takes one block, Runon one per condition)
//! // PEVPM }   … block close
//! ```

use crate::expr::{parse as parse_expr, Expr};
use crate::model::{CollOp, Model, MsgKind, Stmt};

/// An annotation-parsing error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotateError {
    /// 1-based source line of the offending directive.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AnnotateError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AnnotateError> {
    Err(AnnotateError {
        line,
        message: message.into(),
    })
}

/// One extracted directive before AST construction.
#[derive(Debug, Clone)]
enum Directive {
    Loop {
        count: Expr,
        var: Option<String>,
    },
    Runon {
        conds: Vec<Expr>,
    },
    Message {
        kind: MsgKind,
        size: Expr,
        from: Expr,
        to: Expr,
        handle: Option<String>,
    },
    Wait {
        handle: String,
    },
    Serial {
        machine: Option<String>,
        time: Expr,
    },
    Collective {
        op: CollOp,
        size: Expr,
    },
    Open,
    Close,
}

/// Split `key = value` at the first *binding* `=` (one that is not part of
/// `==`, `!=`, `<=`, `>=`).
fn split_binding(s: &str) -> Option<(&str, &str)> {
    let b = s.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'=' {
            let prev = if i > 0 { b[i - 1] } else { b' ' };
            let next = if i + 1 < b.len() { b[i + 1] } else { b' ' };
            if prev != b'=' && prev != b'!' && prev != b'<' && prev != b'>' && next != b'=' {
                return Some((s[..i].trim(), s[i + 1..].trim()));
            }
        }
    }
    None
}

/// Extract the raw `// PEVPM` lines: `(source_line, payload)`.
fn pevpm_lines(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("// PEVPM") {
            out.push((i + 1, rest.trim().to_string()));
        } else if let Some(rest) = t.strip_prefix("//PEVPM") {
            out.push((i + 1, rest.trim().to_string()));
        }
    }
    out
}

/// A grouped directive: `(head_line_no, head_text, key=value fields)`.
type DirectiveGroup = (usize, String, Vec<(String, String)>);

/// Group continuation lines (`& key = value`) with their head directive.
/// Returns `(head_line_no, head_text, fields)` where fields are the
/// `key = value` bindings from the head remainder and all continuations.
fn group_directives(lines: &[(usize, String)]) -> Result<Vec<DirectiveGroup>, AnnotateError> {
    let mut out: Vec<DirectiveGroup> = Vec::new();
    for (lineno, text) in lines {
        if let Some(cont) = text.strip_prefix('&') {
            let Some(last) = out.last_mut() else {
                return err(*lineno, "continuation '&' without a preceding directive");
            };
            let Some((k, v)) = split_binding(cont.trim()) else {
                return err(
                    *lineno,
                    format!("expected key = value after '&', got {cont:?}"),
                );
            };
            last.2.push((k.to_string(), v.to_string()));
        } else {
            out.push((*lineno, text.clone(), Vec::new()));
        }
    }
    Ok(out)
}

fn field<'a>(
    fields: &'a [(String, String)],
    key: &str,
    lineno: usize,
    what: &str,
) -> Result<&'a str, AnnotateError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| AnnotateError {
            line: lineno,
            message: format!("{what} directive missing field {key:?}"),
        })
}

fn expr_field(
    fields: &[(String, String)],
    key: &str,
    lineno: usize,
    what: &str,
) -> Result<Expr, AnnotateError> {
    let v = field(fields, key, lineno, what)?;
    parse_expr(v).map_err(|e| AnnotateError {
        line: lineno,
        message: format!("{what} field {key:?}: {e}"),
    })
}

fn parse_directive(
    lineno: usize,
    head: &str,
    mut fields: Vec<(String, String)>,
) -> Result<Directive, AnnotateError> {
    if head == "{" {
        return Ok(Directive::Open);
    }
    if head == "}" {
        return Ok(Directive::Close);
    }
    let (keyword, rest) = match head.find(char::is_whitespace) {
        Some(pos) => (&head[..pos], head[pos..].trim()),
        None => (head, ""),
    };
    match keyword {
        "Loop" => {
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            let count = expr_field(&fields, "iterations", lineno, "Loop")?;
            let var = fields
                .iter()
                .find(|(k, _)| k == "var")
                .map(|(_, v)| v.clone());
            Ok(Directive::Loop { count, var })
        }
        "Runon" => {
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            if fields.is_empty() {
                return err(lineno, "Runon needs at least one condition");
            }
            let mut conds = Vec::new();
            for (k, v) in &fields {
                if !k.starts_with('c') {
                    return err(
                        lineno,
                        format!("Runon condition keys must be c1, c2, …; got {k:?}"),
                    );
                }
                let e = parse_expr(v).map_err(|e| AnnotateError {
                    line: lineno,
                    message: format!("Runon condition {k:?}: {e}"),
                })?;
                conds.push(e);
            }
            Ok(Directive::Runon { conds })
        }
        "Message" => {
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            let ty = field(&fields, "type", lineno, "Message")?;
            let kind = MsgKind::from_mpi_name(ty).ok_or_else(|| AnnotateError {
                line: lineno,
                message: format!("unknown message type {ty:?}"),
            })?;
            let handle = fields
                .iter()
                .find(|(k, _)| k == "handle")
                .map(|(_, v)| v.clone());
            if kind == MsgKind::Irecv && handle.is_none() {
                return err(lineno, "MPI_Irecv message needs a handle = <name> field");
            }
            Ok(Directive::Message {
                kind,
                size: expr_field(&fields, "size", lineno, "Message")?,
                from: expr_field(&fields, "from", lineno, "Message")?,
                to: expr_field(&fields, "to", lineno, "Message")?,
                handle,
            })
        }
        "Wait" => {
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            let handle = field(&fields, "handle", lineno, "Wait")?.to_string();
            Ok(Directive::Wait { handle })
        }
        "Serial" => {
            // Optional `on <machine>` prefix before `time = …`.
            let mut rest = rest;
            let mut machine = None;
            if let Some(r) = rest.strip_prefix("on ") {
                let r = r.trim_start();
                let end = r.find(char::is_whitespace).unwrap_or(r.len());
                machine = Some(r[..end].to_string());
                rest = r[end..].trim();
            }
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            let time = expr_field(&fields, "time", lineno, "Serial")?;
            Ok(Directive::Serial { machine, time })
        }
        "Collective" => {
            if let Some((k, v)) = split_binding(rest) {
                fields.insert(0, (k.to_string(), v.to_string()));
            }
            let opname = field(&fields, "op", lineno, "Collective")?;
            let op = match opname {
                "barrier" => CollOp::Barrier,
                "bcast" => CollOp::Bcast,
                "reduce" => CollOp::Reduce,
                "allreduce" => CollOp::Allreduce,
                "alltoall" => CollOp::Alltoall,
                other => return err(lineno, format!("unknown collective {other:?}")),
            };
            let size = match field(&fields, "size", lineno, "Collective") {
                Ok(_) => expr_field(&fields, "size", lineno, "Collective")?,
                Err(_) => Expr::Num(0.0),
            };
            Ok(Directive::Collective { op, size })
        }
        other => err(lineno, format!("unknown PEVPM directive {other:?}")),
    }
}

/// What the AST builder is waiting for.
#[derive(Debug)]
enum Pending {
    /// A plain block (statements accumulate here).
    Block(Vec<Stmt>),
    /// A Loop waiting for its single block.
    Loop {
        count: Expr,
        var: Option<String>,
        line: usize,
    },
    /// A Runon with conditions, collecting one block per condition.
    Runon {
        conds: Vec<Expr>,
        done: Vec<(Expr, Vec<Stmt>)>,
        line: usize,
    },
}

/// Parse the `// PEVPM` annotations out of `src` and build a [`Model`].
pub fn parse_annotations(src: &str) -> Result<Model, AnnotateError> {
    let lines = pevpm_lines(src);
    let groups = group_directives(&lines)?;

    let mut stack: Vec<Pending> = vec![Pending::Block(Vec::new())];

    fn append(stack: &mut [Pending], stmt: Stmt, line: usize) -> Result<(), AnnotateError> {
        match stack.last_mut() {
            Some(Pending::Block(stmts)) => {
                stmts.push(stmt);
                Ok(())
            }
            _ => err(line, "statement outside a block (expected '{' first)"),
        }
    }

    for (lineno, head, fields) in groups {
        let d = parse_directive(lineno, &head, fields)?;
        match d {
            Directive::Loop { count, var } => stack.push(Pending::Loop {
                count,
                var,
                line: lineno,
            }),
            Directive::Runon { conds } => stack.push(Pending::Runon {
                conds,
                done: Vec::new(),
                line: lineno,
            }),
            Directive::Message {
                kind,
                size,
                from,
                to,
                handle,
            } => {
                let label = Some(format!("line {lineno}: Message"));
                append(
                    &mut stack,
                    Stmt::Message {
                        kind,
                        size,
                        from,
                        to,
                        handle,
                        label,
                    },
                    lineno,
                )?;
            }
            Directive::Wait { handle } => {
                let label = Some(format!("line {lineno}: Wait"));
                append(&mut stack, Stmt::Wait { handle, label }, lineno)?;
            }
            Directive::Serial { machine, time } => {
                let label = Some(format!("line {lineno}: Serial"));
                append(
                    &mut stack,
                    Stmt::Serial {
                        time,
                        machine,
                        label,
                    },
                    lineno,
                )?;
            }
            Directive::Collective { op, size } => {
                let label = Some(format!("line {lineno}: Collective"));
                append(&mut stack, Stmt::Collective { op, size, label }, lineno)?;
            }
            Directive::Open => match stack.last() {
                Some(Pending::Loop { .. }) | Some(Pending::Runon { .. }) => {
                    stack.push(Pending::Block(Vec::new()));
                }
                _ => return err(lineno, "unexpected '{' (no Loop or Runon pending)"),
            },
            Directive::Close => {
                let Some(Pending::Block(body)) = stack.pop() else {
                    return err(lineno, "unexpected '}'");
                };
                match stack.pop() {
                    Some(Pending::Loop { count, var, .. }) => {
                        append(&mut stack, Stmt::Loop { count, var, body }, lineno)?;
                    }
                    Some(Pending::Runon {
                        conds,
                        mut done,
                        line,
                    }) => {
                        let idx = done.len();
                        done.push((conds[idx].clone(), body));
                        if done.len() == conds.len() {
                            append(&mut stack, Stmt::Runon { branches: done }, lineno)?;
                        } else {
                            stack.push(Pending::Runon { conds, done, line });
                        }
                    }
                    _ => return err(lineno, "'}' does not close a Loop or Runon block"),
                }
            }
        }
    }

    match stack.pop() {
        Some(Pending::Block(stmts)) if stack.is_empty() => Ok(Model {
            stmts,
            params: Default::default(),
        }),
        Some(Pending::Loop { line, .. }) => err(line, "Loop directive never got its block"),
        Some(Pending::Runon {
            line, conds, done, ..
        }) => err(
            line,
            format!(
                "Runon has {} condition(s) but only {} block(s)",
                conds.len(),
                done.len()
            ),
        ),
        _ => err(0, "unbalanced blocks at end of file"),
    }
}

/// The paper's Figure 5 annotated Jacobi listing, shipped as a test asset
/// and parsed by [`parse_annotations`] in the integration tests.
pub const JACOBI_FIG5: &str = include_str!("../assets/jacobi_annotated.c");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::standard_env;

    #[test]
    fn split_binding_skips_comparison_operators() {
        assert_eq!(
            split_binding("c1 = procnum%2 == 0"),
            Some(("c1", "procnum%2 == 0"))
        );
        assert_eq!(
            split_binding("iterations = 1000"),
            Some(("iterations", "1000"))
        );
        assert_eq!(split_binding("no binding here"), None);
        assert_eq!(split_binding("x != 3"), None);
        assert_eq!(split_binding("a <= b"), None);
    }

    #[test]
    fn simple_loop_with_serial() {
        let src = "\
// PEVPM Loop iterations = 10
// PEVPM {
// PEVPM Serial time = 0.5
// PEVPM }
";
        let m = parse_annotations(src).unwrap();
        assert_eq!(m.stmts.len(), 1);
        match &m.stmts[0] {
            Stmt::Loop { count, body, .. } => {
                let env = standard_env(0, 1, &Default::default());
                assert_eq!(count.eval(&env).unwrap(), 10.0);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected Loop, got {other:?}"),
        }
    }

    #[test]
    fn serial_machine_name_is_captured() {
        let src = "// PEVPM Serial on perseus time = 3.24/numprocs\n";
        let m = parse_annotations(src).unwrap();
        match &m.stmts[0] {
            Stmt::Serial { machine, .. } => assert_eq!(machine.as_deref(), Some("perseus")),
            other => panic!("expected Serial, got {other:?}"),
        }
    }

    #[test]
    fn message_with_continuations() {
        let src = "\
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
";
        let m = parse_annotations(src).unwrap();
        match &m.stmts[0] {
            Stmt::Message {
                kind,
                size,
                from,
                to,
                ..
            } => {
                assert_eq!(*kind, MsgKind::Send);
                let mut params = crate::expr::Env::default();
                params.insert("xsize".into(), 256.0);
                let env = standard_env(3, 8, &params);
                assert_eq!(size.eval(&env).unwrap(), 1024.0);
                assert_eq!(from.eval(&env).unwrap(), 3.0);
                assert_eq!(to.eval(&env).unwrap(), 2.0);
            }
            other => panic!("expected Message, got {other:?}"),
        }
    }

    #[test]
    fn runon_two_branches() {
        let src = "\
// PEVPM Runon c1 = procnum%2 == 0
// PEVPM &     c2 = procnum%2 != 0
// PEVPM {
// PEVPM Serial time = 1
// PEVPM }
// PEVPM {
// PEVPM Serial time = 2
// PEVPM }
";
        let m = parse_annotations(src).unwrap();
        match &m.stmts[0] {
            Stmt::Runon { branches } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].1.len(), 1);
                assert_eq!(branches[1].1.len(), 1);
            }
            other => panic!("expected Runon, got {other:?}"),
        }
    }

    #[test]
    fn fig5_listing_parses() {
        let m = parse_annotations(JACOBI_FIG5).unwrap();
        // Top level: one Loop.
        assert_eq!(m.stmts.len(), 1);
        let Stmt::Loop { body, .. } = &m.stmts[0] else {
            panic!("expected the iteration loop")
        };
        // Loop body: Runon (even/odd) + Serial.
        assert_eq!(body.len(), 2);
        let Stmt::Runon { branches } = &body[0] else {
            panic!("expected even/odd Runon")
        };
        assert_eq!(branches.len(), 2);
        // Even branch: guarded send, send, recv, guarded recv.
        assert_eq!(branches[0].1.len(), 4);
        // Odd branch: guarded recv, recv, send, guarded send.
        assert_eq!(branches[1].1.len(), 4);
        assert!(matches!(body[1], Stmt::Serial { .. }));
        // Free variables: xsize and iterations.
        assert_eq!(m.free_variables(), vec!["iterations", "xsize"]);
    }

    #[test]
    fn error_reporting() {
        assert!(parse_annotations("// PEVPM Bogus x = 1\n").is_err());
        assert!(parse_annotations("// PEVPM }\n").is_err());
        assert!(parse_annotations("// PEVPM Loop iterations = 3\n").is_err());
        assert!(parse_annotations("// PEVPM & x = 1\n").is_err());
        let e = parse_annotations("// PEVPM Message type = MPI_Send\n").unwrap_err();
        assert!(e.message.contains("size"), "{e}");
        // Runon with 2 conditions but one block.
        let src = "\
// PEVPM Runon c1 = 1
// PEVPM &     c2 = 0
// PEVPM {
// PEVPM }
";
        let e = parse_annotations(src).unwrap_err();
        assert!(e.message.contains("block"), "{e}");
    }

    #[test]
    fn non_pevpm_lines_are_ignored() {
        let src = "\
int main() {
  // a normal comment
  for (;;) {}
  // PEVPM Serial time = 1
}
";
        let m = parse_annotations(src).unwrap();
        assert_eq!(m.stmts.len(), 1);
    }
}
