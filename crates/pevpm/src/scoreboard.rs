//! Slab storage and per-pair FIFO indexing for the contention scoreboard.
//!
//! The VM's scoreboard (§5's "contention scoreboard") used to be a plain
//! `Vec` of in-flight messages: every match-phase lookup was an O(n) scan,
//! removal was `swap_remove` (which moves an unrelated entry, so blocked
//! rendezvous senders had to reference messages positionally and carefully),
//! and per-pair FIFO heads were recomputed by scanning the whole board.
//! This module replaces that with two allocation-friendly structures:
//!
//! - [`Slab`]: a generational arena. Insert/remove are O(1) via a free
//!   list, and every entry is addressed by a [`Handle`] that stays valid
//!   however many *other* entries come and go — removing an entry bumps its
//!   slot's generation, so stale handles are detected instead of silently
//!   aliasing a new message.
//! - [`PairFifo`]: the per-(sender → destination) message-sequence index.
//!   It owns the send/receive sequence counters and, per pair, a queue of
//!   `(seq, Handle)` in send order, so a directed receive finds its message
//!   by binary search on its reserved sequence number and a wildcard
//!   receive enumerates exactly the per-pair FIFO heads — no full-board
//!   scans anywhere.
//!
//! Both types are deterministic: iteration orders are slot order
//! ([`Slab::iter`]) and ascending sender rank ([`PairFifo::heads`]), with
//! no dependence on hashing or insertion history beyond the FIFO semantics
//! themselves.

use std::collections::{BTreeMap, VecDeque};

/// A stable reference to one [`Slab`] entry.
///
/// Handles are plain `Copy` data. A handle is invalidated only by removing
/// *its own* entry (which bumps the slot generation); insertions and
/// removals elsewhere never move or alias it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl std::fmt::Display for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}v{}", self.idx, self.gen)
    }
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A generational slab: O(1) insert and remove with stable [`Handle`]s.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, reusing a free slot if one exists. O(1).
    pub fn insert(&mut self, val: T) -> Handle {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            Handle { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32");
            self.slots.push(Slot {
                gen: 0,
                val: Some(val),
            });
            Handle { idx, gen: 0 }
        }
    }

    /// Remove and return the entry behind `h`, invalidating `h` (and any
    /// copy of it). Returns `None` for stale or never-valid handles. O(1).
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen || slot.val.is_none() {
            return None;
        }
        let val = slot.val.take();
        // Bump the generation so outstanding copies of `h` can never alias
        // a future occupant of this slot.
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.len -= 1;
        val
    }

    /// Shared access to the entry behind `h`, if still live.
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutable access to the entry behind `h`, if still live.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// True if `h` still refers to a live entry.
    pub fn contains(&self, h: Handle) -> bool {
        self.get(h).is_some()
    }

    /// Iterate live entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| {
                (
                    Handle {
                        idx: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Mutably iterate live entries in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(|s| s.val.as_mut())
    }
}

/// Per-pair state: monotone sequence counters plus the in-flight queue.
#[derive(Debug, Default, Clone)]
struct PairState {
    /// Next sequence number a send from this pair will take.
    send_seq: u64,
    /// Next sequence number a receive will reserve — and, equivalently, the
    /// pair's current wildcard FIFO head. A single counter serves both
    /// roles: directed receives reserve slots in post order, and a wildcard
    /// receive consumes exactly the first *unreserved* message.
    recv_seq: u64,
    /// In-flight messages of this pair in send order: `(seq, handle)`,
    /// strictly ascending in `seq`.
    queue: VecDeque<(u64, Handle)>,
}

/// The per-(sender, destination) FIFO index over a message [`Slab`].
///
/// Sequence numbers are per ordered pair, exactly matching MPI's
/// non-overtaking guarantee: messages between a given sender and receiver
/// match in send order, while messages of different pairs are unordered.
#[derive(Debug, Clone)]
pub struct PairFifo {
    /// Indexed by destination rank; keyed by sender rank. A `BTreeMap`
    /// keeps wildcard enumeration in ascending sender order — deterministic
    /// without any dependence on message history.
    by_dest: Vec<BTreeMap<usize, PairState>>,
}

impl PairFifo {
    /// An empty index for `nprocs` destinations.
    pub fn new(nprocs: usize) -> Self {
        PairFifo {
            by_dest: vec![BTreeMap::new(); nprocs],
        }
    }

    fn pair(&mut self, from: usize, to: usize) -> &mut PairState {
        self.by_dest[to].entry(from).or_default()
    }

    /// Allocate the next send sequence number for `from → to`.
    pub fn next_send_seq(&mut self, from: usize, to: usize) -> u64 {
        let s = self.pair(from, to);
        let v = s.send_seq;
        s.send_seq += 1;
        v
    }

    /// Reserve the next receive slot for `from → to` (a directed receive or
    /// a nonblocking-receive post), returning the sequence number the
    /// matching message will carry.
    pub fn reserve_recv(&mut self, from: usize, to: usize) -> u64 {
        let s = self.pair(from, to);
        let v = s.recv_seq;
        s.recv_seq += 1;
        v
    }

    /// Record an in-flight message. `seq` must come from
    /// [`PairFifo::next_send_seq`] for the same pair, so queues stay
    /// strictly ascending.
    pub fn enqueue(&mut self, from: usize, to: usize, seq: u64, h: Handle) {
        let s = self.pair(from, to);
        debug_assert!(s.queue.back().is_none_or(|&(last, _)| last < seq));
        s.queue.push_back((seq, h));
    }

    /// Find and remove the in-flight message `from → to` with sequence
    /// number `seq`. O(log queue) search; the hit is usually the front, but
    /// nonblocking-receive reservations can leave it mid-queue.
    pub fn take(&mut self, from: usize, to: usize, seq: u64) -> Option<Handle> {
        let s = self.by_dest[to].get_mut(&from)?;
        let i = s.queue.binary_search_by_key(&seq, |&(q, _)| q).ok()?;
        s.queue.remove(i).map(|(_, h)| h)
    }

    /// The wildcard candidates at destination `to`: for each sender pair,
    /// the in-flight message (if any) whose sequence number equals the
    /// pair's receive counter — i.e. the first message not already reserved
    /// by a directed receive. Yields `(sender, handle)` in ascending sender
    /// order; at most one candidate per sender.
    pub fn heads(&self, to: usize) -> impl Iterator<Item = (usize, Handle)> + '_ {
        self.by_dest[to].iter().filter_map(|(&from, s)| {
            let i = s
                .queue
                .binary_search_by_key(&s.recv_seq, |&(q, _)| q)
                .ok()?;
            Some((from, s.queue[i].1))
        })
    }

    /// Iterate every in-flight message in deterministic order — ascending
    /// destination rank, then ascending sender rank, then send order —
    /// yielding `(from, to, handle)`. The DAG scheduler uses this to hand
    /// a finished component's unmatched sends to downstream components.
    pub fn in_flight(&self) -> impl Iterator<Item = (usize, usize, Handle)> + '_ {
        self.by_dest.iter().enumerate().flat_map(|(to, senders)| {
            senders
                .iter()
                .flat_map(move |(&from, s)| s.queue.iter().map(move |&(_, h)| (from, to, h)))
        })
    }

    /// Consume the wildcard head of pair `from → to`: advance the receive
    /// counter past it and drop it from the queue. Returns the consumed
    /// handle (`None` if the pair has no head in flight — callers pass a
    /// pair previously yielded by [`PairFifo::heads`]).
    pub fn consume_head(&mut self, from: usize, to: usize) -> Option<Handle> {
        let s = self.by_dest[to].get_mut(&from)?;
        let seq = s.recv_seq;
        s.recv_seq += 1;
        let i = s.queue.binary_search_by_key(&seq, |&(q, _)| q).ok()?;
        s.queue.remove(i).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_remove_roundtrip() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None, "removed handle must be dead");
        assert_eq!(s.get(b), Some(&"b"), "unrelated handle unaffected");
    }

    #[test]
    fn slab_stale_handle_cannot_alias_reused_slot() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2); // reuses slot 0 with a bumped generation
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
        assert_ne!(a, b);
    }

    #[test]
    fn slab_iter_is_slot_ordered_and_live_only() {
        let mut s: Slab<u32> = Slab::new();
        let hs: Vec<Handle> = (0..5).map(|i| s.insert(i)).collect();
        s.remove(hs[1]);
        s.remove(hs[3]);
        let vals: Vec<u32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![0, 2, 4]);
        for v in s.iter_mut() {
            *v += 10;
        }
        let vals: Vec<u32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![10, 12, 14]);
    }

    #[test]
    fn fifo_directed_take_matches_in_order() {
        let mut s: Slab<u32> = Slab::new();
        let mut f = PairFifo::new(2);
        for v in 0..3 {
            let seq = f.next_send_seq(0, 1);
            assert_eq!(seq, v as u64);
            let h = s.insert(v);
            f.enqueue(0, 1, seq, h);
        }
        // Receives reserve 0, 1, 2 and match the sends in order.
        for want in 0..3u32 {
            let seq = f.reserve_recv(0, 1);
            let h = f.take(0, 1, seq).expect("message in flight");
            assert_eq!(s.remove(h), Some(want));
        }
        assert!(s.is_empty());
        assert_eq!(f.take(0, 1, 99), None);
    }

    #[test]
    fn fifo_take_finds_mid_queue_reservations() {
        // An irecv reserves seq 0; a later blocking recv reserves seq 1 and
        // must find message 1 even though message 0 is still queued.
        let mut s: Slab<u32> = Slab::new();
        let mut f = PairFifo::new(2);
        for v in 0..2 {
            let seq = f.next_send_seq(0, 1);
            f.enqueue(0, 1, seq, s.insert(v));
        }
        let first = f.reserve_recv(0, 1); // the irecv's slot
        let second = f.reserve_recv(0, 1);
        let h = f.take(0, 1, second).expect("mid-queue hit");
        assert_eq!(s.remove(h), Some(1));
        let h = f.take(0, 1, first).expect("head still there");
        assert_eq!(s.remove(h), Some(0));
    }

    #[test]
    fn fifo_heads_skip_reserved_and_order_by_sender() {
        let mut s: Slab<(usize, u32)> = Slab::new();
        let mut f = PairFifo::new(4);
        // Senders 2 and 1 each have two messages in flight to 0.
        for from in [2usize, 1] {
            for v in 0..2 {
                let seq = f.next_send_seq(from, 0);
                f.enqueue(from, 0, seq, s.insert((from, v)));
            }
        }
        let heads: Vec<usize> = f.heads(0).map(|(from, _)| from).collect();
        assert_eq!(heads, vec![1, 2], "ascending sender order");
        // Reserving sender 1's head (a directed receive) removes it from
        // the wildcard candidates: the directed receive will consume it, so
        // the wildcard's candidate advances to the *second* message.
        let seq = f.reserve_recv(1, 0);
        let (_, h) = f.heads(0).find(|&(from, _)| from == 1).unwrap();
        assert_eq!(s.get(h), Some(&(1, 1)), "head advanced past reservation");
        // The reserved message is still in flight for the directed match.
        assert!(f.take(1, 0, seq).is_some());
        // Consuming the advanced head empties sender 1's candidates.
        assert_eq!(f.consume_head(1, 0), Some(h));
        assert_eq!(f.heads(0).map(|(from, _)| from).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn fifo_consume_head_advances_fifo() {
        let mut s: Slab<u32> = Slab::new();
        let mut f = PairFifo::new(2);
        for v in 0..2 {
            let seq = f.next_send_seq(1, 0);
            f.enqueue(1, 0, seq, s.insert(v));
        }
        let (_, h0) = f.heads(0).next().unwrap();
        assert_eq!(f.consume_head(1, 0), Some(h0));
        assert_eq!(s.remove(h0), Some(0));
        let (_, h1) = f.heads(0).next().unwrap();
        assert_eq!(f.consume_head(1, 0), Some(h1));
        assert_eq!(s.remove(h1), Some(1));
        assert_eq!(f.heads(0).count(), 0);
    }
}
