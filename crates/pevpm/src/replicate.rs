//! Deterministic parallel replication engine.
//!
//! Monte-Carlo prediction (§6 of the paper) and benchmark sweeps both run
//! many *independent* replications — same computation, different derived
//! seed. This module fans those replications across OS threads (crossbeam
//! scoped threads over an atomic work counter) while keeping the results
//! **bitwise identical to the serial path at any thread count**:
//!
//! - replica `i` derives its RNG seed as [`replica_seed`]`(base, i)` — the
//!   same `base.wrapping_add(i)` scheme the serial loops always used, so a
//!   replica's draws depend only on `(base_seed, replica_index)`, never on
//!   which thread ran it;
//! - results are written back in replica-index order, so aggregation sees
//!   the exact sequence the serial loop would have produced;
//! - on error, the error of the **lowest-index** failing replica is
//!   reported — the one the serial loop would have hit first.
//!
//! Thread counts are expressed as `0 = use all available parallelism`;
//! `1` forces the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a configured thread count: `0` means "all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Seed for replica `index` of a replication batch with base seed `base`.
///
/// This is the workspace-wide seeding contract: every replicated loop
/// (Monte-Carlo evaluation, benchmark repetitions, figure rows) derives
/// per-replica seeds this way, which is what makes parallel execution
/// bitwise-reproducible.
pub fn replica_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index)
}

/// Map `f` over `0..n` on up to `threads` worker threads, returning the
/// results in index order. `f(i)` must depend only on `i` (plus captured
/// immutable state) — then the output is identical at any thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_parallel_map(n, threads, |i| Ok::<T, std::convert::Infallible>(f(i)))
        .unwrap_or_else(|e| match e {})
}

/// [`parallel_map`] for fallible jobs. Returns the first (lowest-index)
/// error if any job fails, matching what a serial loop would report.
pub fn try_parallel_map<T, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, Result<T, E>)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication worker panicked"))
            .collect()
    })
    .expect("replication scope panicked");

    let mut slots: Vec<Option<Result<T, E>>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(slot.expect("replication index not produced")?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_thread_count() {
        let serial = parallel_map(37, 1, |i| i * i);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map(37, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn errors_report_the_lowest_failing_index() {
        for threads in [1, 4] {
            let r: Result<Vec<usize>, usize> =
                try_parallel_map(100, threads, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
            assert_eq!(r.unwrap_err(), 3);
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(5), 5);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn replica_seeds_match_the_serial_convention() {
        assert_eq!(replica_seed(10, 0), 10);
        assert_eq!(replica_seed(10, 3), 13);
        assert_eq!(replica_seed(u64::MAX, 1), 0, "wrapping, not saturating");
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }
}
