//! Deterministic parallel replication engine.
//!
//! Monte-Carlo prediction (§6 of the paper) and benchmark sweeps both run
//! many *independent* replications — same computation, different derived
//! seed. This module fans those replications across OS threads (crossbeam
//! scoped threads over an atomic work counter) while keeping the results
//! **bitwise identical to the serial path at any thread count**:
//!
//! - replica `i` derives its RNG seed as [`replica_seed`]`(base, i)` — the
//!   same `base.wrapping_add(i)` scheme the serial loops always used, so a
//!   replica's draws depend only on `(base_seed, replica_index)`, never on
//!   which thread ran it;
//! - results are written back in replica-index order, so aggregation sees
//!   the exact sequence the serial loop would have produced;
//! - on error, the error of the **lowest-index** failing replica is
//!   reported — the one the serial loop would have hit first.
//!
//! Thread counts are expressed as `0 = use all available parallelism`;
//! `1` forces the serial path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A replication worker panicked. Carried inside [`JobError::Panic`] so a
/// worker panic reaches the caller as a value instead of unwinding (or
/// aborting) through the replication harness — critical once replication
/// runs inside a long-lived service rather than a one-shot CLI process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPanic {
    /// Index of the panicking replica, when the panic is attributable to
    /// one specific job (`None` for harness-level failures outside any
    /// job closure).
    pub index: Option<usize>,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for ReplicaPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(f, "replication {i} panicked: {}", self.message),
            None => write!(f, "replication worker panicked: {}", self.message),
        }
    }
}

/// Why one replication job failed, for the panic-isolated map.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError<E> {
    /// The job returned an error.
    Err(E),
    /// The job panicked; the payload carries the replica index and panic
    /// message.
    Panic(ReplicaPanic),
}

impl<E: std::fmt::Display> std::fmt::Display for JobError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Err(e) => write!(f, "{e}"),
            JobError::Panic(p) => write!(f, "{p}"),
        }
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// What one replication worker did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStat {
    /// Replicas this worker executed.
    pub jobs: usize,
    /// Wall-clock seconds the worker spent inside replica evaluations.
    pub busy_secs: f64,
}

/// Profile of one replication batch: how the work spread over workers and
/// how much of their wall time was useful. Surfaced in
/// [`McPrediction::profile`](crate::vm::McPrediction) and the `tcost`
/// report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicateProfile {
    /// Per-worker statistics, in worker-spawn order (a single entry for
    /// the serial path).
    pub workers: Vec<WorkerStat>,
    /// Wall-clock seconds from batch start to the last worker finishing.
    pub wall_secs: f64,
}

impl ReplicateProfile {
    /// Total replicas executed.
    pub fn total_jobs(&self) -> usize {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Summed busy seconds across workers.
    pub fn busy_secs(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_secs).sum()
    }

    /// Summed idle seconds across workers: each worker's share of the
    /// batch wall time not spent evaluating (work-stealing imbalance,
    /// scheduling gaps).
    pub fn idle_secs(&self) -> f64 {
        (self.workers.len() as f64 * self.wall_secs - self.busy_secs()).max(0.0)
    }

    /// Fraction of worker wall time spent evaluating, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.workers.len() as f64 * self.wall_secs;
        if total <= 0.0 {
            0.0
        } else {
            (self.busy_secs() / total).clamp(0.0, 1.0)
        }
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a configured thread count: `0` means "all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

/// Seed for replica `index` of a replication batch with base seed `base`.
///
/// This is the workspace-wide seeding contract: every replicated loop
/// (Monte-Carlo evaluation, benchmark repetitions, figure rows) derives
/// per-replica seeds this way, which is what makes parallel execution
/// bitwise-reproducible.
pub fn replica_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index)
}

/// Shared worker budget for nested parallelism: an outer replication pool
/// whose jobs each run an inner DAG-scheduled evaluation
/// (`--threads × --eval-threads`). The outer pool keeps the width the
/// user asked for — the historical `--threads` contract — and the inner
/// scheduler gets the per-job share of the total, so the two levels
/// combined never spawn more workers than the budget. Capping the inner
/// level is result-neutral: DAG predictions are bitwise identical at any
/// worker count `>= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBudget {
    total: usize,
}

impl ThreadBudget {
    /// Budget of `total` workers; `0` means "all available cores".
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total: resolve_threads(total),
        }
    }

    /// Budget covering the host's hardware threads.
    pub fn from_host() -> Self {
        ThreadBudget::new(0)
    }

    /// Total workers in the budget (at least 1).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Outer (replication) pool width for `requested` threads over `jobs`
    /// jobs: an explicit request is honoured verbatim, `0` = all cores,
    /// never wider than the job count.
    pub fn outer(&self, requested: usize, jobs: usize) -> usize {
        resolve_threads(requested).min(jobs.max(1))
    }

    /// Inner (intra-evaluation) worker count each of `outer` concurrent
    /// jobs may use: the per-job share of the budget, clamped to the
    /// request. `requested == 0` (inner parallelism disabled) stays `0`.
    /// The budget is raised to at least the outer width first, so an
    /// explicitly oversized outer pool leaves each job one inner worker
    /// rather than zero.
    pub fn inner(&self, outer: usize, requested: usize) -> usize {
        if requested == 0 {
            return 0;
        }
        let outer = outer.max(1);
        let total = self.total.max(outer);
        (total / outer).clamp(1, requested)
    }
}

/// Map `f` over `0..n` on up to `threads` worker threads, returning the
/// results in index order. `f(i)` must depend only on `i` (plus captured
/// immutable state) — then the output is identical at any thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_parallel_map(n, threads, |i| Ok::<T, std::convert::Infallible>(f(i))) {
        Ok(v) => v,
        Err(JobError::Err(e)) => match e {},
        // Infallible jobs can still panic; re-raise on the caller thread
        // (a clean unwind, never a cross-thread abort).
        Err(JobError::Panic(p)) => panic!("{p}"),
    }
}

/// [`parallel_map`] for fallible jobs. Returns the first (lowest-index)
/// failure if any job fails, matching what a serial loop would report; a
/// panicking job surfaces as [`JobError::Panic`] rather than unwinding
/// through (or aborting) the harness.
pub fn try_parallel_map<T, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, JobError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    try_parallel_map_profiled(n, threads, f).map(|(out, _)| out)
}

/// Run job `i` under [`catch_unwind`], mapping both failure modes into
/// [`JobError`].
fn run_caught<T, E, F>(f: &F, i: usize) -> Result<T, JobError<E>>
where
    F: Fn(usize) -> Result<T, E> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| f(i))) {
        Ok(r) => r.map_err(JobError::Err),
        Err(payload) => Err(JobError::Panic(ReplicaPanic {
            index: Some(i),
            message: panic_message(payload),
        })),
    }
}

/// [`try_parallel_map`] that additionally reports a [`ReplicateProfile`]:
/// per-worker replica counts and busy wall time. Profiling costs two
/// `Instant::now` calls per replica — negligible against any real
/// evaluation — and does not affect results (replica seeding is
/// index-derived, never time-derived).
pub fn try_parallel_map_profiled<T, E, F>(
    n: usize,
    threads: usize,
    f: F,
) -> Result<(Vec<T>, ReplicateProfile), JobError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    let batch_start = Instant::now();
    if threads <= 1 || n <= 1 {
        let mut stat = WorkerStat::default();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t0 = Instant::now();
            let r = run_caught(&f, i);
            stat.busy_secs += t0.elapsed().as_secs_f64();
            stat.jobs += 1;
            out.push(r?);
        }
        let profile = ReplicateProfile {
            workers: vec![stat],
            wall_secs: batch_start.elapsed().as_secs_f64(),
        };
        return Ok((out, profile));
    }

    // One worker's output: its stats plus the (index, result) pairs it ran.
    // Each job runs under `catch_unwind`, so a panicking job is recorded in
    // its slot as a value and the worker thread itself never unwinds —
    // `join()` below cannot fail for a job-level panic.
    type Bucket<T, E> = (WorkerStat, Vec<(usize, Result<T, JobError<E>>)>);
    let next = AtomicUsize::new(0);
    let buckets: Vec<Bucket<T, E>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut stat = WorkerStat::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        local.push((i, run_caught(&f, i)));
                        stat.busy_secs += t0.elapsed().as_secs_f64();
                        stat.jobs += 1;
                    }
                    (stat, local)
                })
            })
            .collect();
        let mut buckets = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok(b) => buckets.push(b),
                // Unreachable for job panics (caught above); covers panics
                // in the worker's own bookkeeping or drop glue.
                Err(payload) => {
                    return Err(JobError::Panic(ReplicaPanic {
                        index: None,
                        message: panic_message(payload),
                    }))
                }
            }
        }
        Ok(buckets)
    })
    .unwrap_or_else(|payload| {
        Err(JobError::Panic(ReplicaPanic {
            index: None,
            message: panic_message(payload),
        }))
    })?;

    let wall_secs = batch_start.elapsed().as_secs_f64();
    let mut slots: Vec<Option<Result<T, JobError<E>>>> = (0..n).map(|_| None).collect();
    let mut workers = Vec::with_capacity(buckets.len());
    for (stat, bucket) in buckets {
        workers.push(stat);
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(r) => out.push(r?),
            // Every index in 0..n is claimed exactly once by the atomic
            // counter; a hole means the harness itself misbehaved.
            None => {
                return Err(JobError::Panic(ReplicaPanic {
                    index: Some(i),
                    message: "replication index not produced".to_string(),
                }))
            }
        }
    }
    Ok((out, ReplicateProfile { workers, wall_secs }))
}

/// [`try_parallel_map_profiled`] with per-job panic isolation: every job
/// runs under [`catch_unwind`], so one panicking replication neither
/// aborts the process nor poisons its worker — the worker moves on to the
/// next job. Returns **all** per-index outcomes (in index order), letting
/// the caller apply a quorum policy instead of failing on the first
/// error. A default-hook suppression is *not* installed: the panic
/// message still prints to stderr, which is the wanted diagnostic.
pub fn isolated_map_profiled<T, E, F>(
    n: usize,
    threads: usize,
    f: F,
) -> (Vec<Result<T, JobError<E>>>, ReplicateProfile)
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let isolated = |i: usize| -> Result<Result<T, JobError<E>>, std::convert::Infallible> {
        Ok(match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(JobError::Err(e)),
            Err(payload) => Err(JobError::Panic(ReplicaPanic {
                index: Some(i),
                message: panic_message(payload),
            })),
        })
    };
    match try_parallel_map_profiled(n, threads, isolated) {
        Ok(pair) => pair,
        Err(JobError::Err(e)) => match e {},
        // Harness-level failure (outside any job closure): report it for
        // every index so the quorum policy sees a fully-failed batch
        // instead of the process dying.
        Err(JobError::Panic(p)) => (
            (0..n).map(|_| Err(JobError::Panic(p.clone()))).collect(),
            ReplicateProfile::default(),
        ),
    }
}

/// [`isolated_map_profiled`] with a per-job observer: after job `i`
/// finishes — success, error, or caught panic — `observe(i, busy_secs)`
/// runs on the worker thread that executed it. The observer is a
/// telemetry hook (per-job latency histograms, span stage callbacks in a
/// long-lived service) and cannot influence results: it sees only the
/// index and the job's wall time, after the outcome is already decided.
pub fn isolated_map_observed<T, E, F, O>(
    n: usize,
    threads: usize,
    f: F,
    observe: O,
) -> (Vec<Result<T, JobError<E>>>, ReplicateProfile)
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    O: Fn(usize, f64) + Sync,
{
    isolated_map_profiled(n, threads, move |i| {
        let t0 = Instant::now();
        let r = catch_unwind(AssertUnwindSafe(|| f(i)));
        observe(i, t0.elapsed().as_secs_f64());
        match r {
            Ok(v) => v,
            // Re-raise so the isolation layer classifies the panic with
            // its index; the observer above has already run.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_thread_count() {
        let serial = parallel_map(37, 1, |i| i * i);
        for threads in [2, 3, 4, 8] {
            assert_eq!(parallel_map(37, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn errors_report_the_lowest_failing_index() {
        for threads in [1, 4] {
            let r: Result<Vec<usize>, JobError<usize>> =
                try_parallel_map(100, threads, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
            assert_eq!(r.unwrap_err(), JobError::Err(3));
        }
    }

    #[test]
    fn panicking_job_surfaces_err_not_abort() {
        // Silence the default panic hook: the panic is deliberate.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 4] {
            let r = try_parallel_map(8, threads, |i| {
                if i == 5 {
                    panic!("deliberate panic at {i}");
                }
                Ok::<_, String>(i)
            });
            match r {
                Err(JobError::Panic(p)) => {
                    assert_eq!(p.index, Some(5));
                    assert!(p.message.contains("deliberate panic at 5"), "{}", p.message);
                }
                other => panic!("expected structured panic error, got {other:?}"),
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn panic_beats_error_when_it_has_the_lower_index() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 4] {
            let r = try_parallel_map(10, threads, |i| match i {
                2 => panic!("boom"),
                4 => Err("late error".to_string()),
                _ => Ok(i),
            });
            assert_eq!(
                r.unwrap_err(),
                JobError::Panic(ReplicaPanic {
                    index: Some(2),
                    message: "boom".to_string(),
                })
            );
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(5), 5);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn replica_seeds_match_the_serial_convention() {
        assert_eq!(replica_seed(10, 0), 10);
        assert_eq!(replica_seed(10, 3), 13);
        assert_eq!(replica_seed(u64::MAX, 1), 0, "wrapping, not saturating");
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn profile_accounts_for_every_job() {
        for threads in [1usize, 3] {
            let (out, profile) = try_parallel_map_profiled(25, threads, Ok::<_, ()>).unwrap();
            assert_eq!(out.len(), 25);
            assert_eq!(profile.total_jobs(), 25);
            assert_eq!(profile.workers.len(), threads.min(25));
            assert!(profile.wall_secs >= 0.0);
            assert!(profile.busy_secs() >= 0.0);
            let u = profile.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    #[test]
    fn profile_on_error_still_reports_lowest_index() {
        let r = try_parallel_map_profiled(10, 4, |i| if i >= 4 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), JobError::Err(4));
    }

    #[test]
    fn isolated_map_survives_panicking_jobs() {
        // Silence the default panic hook for this test: the panics are
        // intentional and the backtraces would pollute test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 4] {
            let (out, profile) = isolated_map_profiled(12, threads, |i| {
                if i % 5 == 2 {
                    panic!("boom at {i}");
                }
                if i % 5 == 3 {
                    return Err(format!("err at {i}"));
                }
                Ok(i * 10)
            });
            assert_eq!(out.len(), 12);
            assert_eq!(profile.total_jobs(), 12, "panicked jobs still counted");
            for (i, r) in out.iter().enumerate() {
                match (i % 5, r) {
                    (2, Err(JobError::Panic(p))) => {
                        assert_eq!(p.index, Some(i));
                        assert!(p.message.contains(&format!("boom at {i}")));
                    }
                    (3, Err(JobError::Err(m))) => assert!(m.contains(&format!("err at {i}"))),
                    (_, Ok(v)) => assert_eq!(*v, i * 10),
                    other => panic!("index {i}: unexpected outcome {other:?}"),
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn observer_sees_every_job_including_panicking_ones() {
        use std::sync::Mutex;
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 4] {
            let seen = Mutex::new(vec![false; 12]);
            let (out, _) = isolated_map_observed(
                12,
                threads,
                |i| {
                    if i % 5 == 2 {
                        panic!("boom at {i}");
                    }
                    Ok::<_, String>(i * 10)
                },
                |i, busy| {
                    assert!(busy >= 0.0);
                    seen.lock().unwrap()[i] = true;
                },
            );
            assert!(
                seen.lock().unwrap().iter().all(|&s| s),
                "every job observed"
            );
            for (i, r) in out.iter().enumerate() {
                match (i % 5, r) {
                    (2, Err(JobError::Panic(p))) => assert_eq!(p.index, Some(i)),
                    (_, Ok(v)) => assert_eq!(*v, i * 10),
                    other => panic!("index {i}: unexpected outcome {other:?}"),
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn empty_profile_is_harmless() {
        let p = ReplicateProfile::default();
        assert_eq!(p.total_jobs(), 0);
        assert_eq!(p.utilization(), 0.0);
        assert_eq!(p.idle_secs(), 0.0);
    }

    #[test]
    fn thread_budget_splits_without_oversubscribing() {
        let b = ThreadBudget::new(16);
        assert_eq!(b.total(), 16);
        // 8 outer workers × 2 inner workers = exactly the budget.
        assert_eq!(b.inner(8, 8), 2);
        // The inner level never exceeds the request...
        assert_eq!(b.inner(2, 3), 3);
        assert_eq!(b.inner(1, 4), 4);
        // ...and a disabled inner level stays disabled.
        assert_eq!(b.inner(8, 0), 0);
    }

    #[test]
    fn thread_budget_never_starves_a_job() {
        // An outer pool wider than the budget still leaves each job one
        // inner worker — `outer × inner` is then exactly `outer`, the
        // width the user explicitly asked for.
        let b = ThreadBudget::new(4);
        assert_eq!(b.inner(8, 8), 1);
        assert_eq!(b.inner(100, 2), 1);
    }

    #[test]
    fn thread_budget_outer_honours_requests_and_job_counts() {
        let b = ThreadBudget::new(4);
        // Explicit request honoured verbatim (the `--threads` contract)…
        assert_eq!(b.outer(8, 100), 8);
        // …but never wider than the job count.
        assert_eq!(b.outer(8, 3), 3);
        // `0` = all cores.
        assert_eq!(b.outer(0, usize::MAX), available_threads());
        assert!(b.outer(0, 1) == 1);
    }

    #[test]
    fn thread_budget_product_is_bounded() {
        // The invariant the regression guards: for any request pair, the
        // spawned worker product stays within max(budget, outer).
        for total in [1usize, 2, 4, 8, 64] {
            let b = ThreadBudget::new(total);
            for outer_req in [1usize, 2, 7, 8, 33] {
                for inner_req in [1usize, 2, 8, 19] {
                    let outer = b.outer(outer_req, 1000);
                    let inner = b.inner(outer, inner_req);
                    assert!(
                        outer * inner <= b.total().max(outer),
                        "budget {total}: {outer_req}×{inner_req} spawned {outer}×{inner}"
                    );
                }
            }
        }
    }
}
