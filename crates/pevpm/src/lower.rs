//! Directive-program lowering: compile a [`Model`]'s statement tree into a
//! slot-indexed form evaluated without string hashing or allocation.
//!
//! The VM executes directives millions of times per Monte-Carlo batch, and
//! profiling shows the symbolic [`Expr`] interpreter — one hash-map lookup
//! per variable reference, a string match per `sizeof` — dominating the
//! sweep phase once sampling itself is compiled. This pass runs once per
//! [`crate::vm::evaluate`] call:
//!
//! - every variable name is interned to a dense slot index, so the runtime
//!   environment is a `Vec<Option<f64>>` and a variable reference is an
//!   array read;
//! - `sizeof(<ctype>)` is resolved to its constant;
//! - constant subtrees are folded (`xsize*sizeof(float)` lowers to one
//!   multiply against a literal once `sizeof` resolves), except subtrees
//!   whose evaluation errors — those are kept symbolic so the error still
//!   surfaces if and when the directive actually executes;
//! - builtin calls are arity-checked here and lowered to fixed-arity
//!   nodes, removing the per-call argument `Vec`;
//! - `Irecv`/`Wait` request handles are interned the same way, so the
//!   per-process handle table is a `Vec`, not a string-keyed map.
//!
//! Evaluation semantics ([`LExpr::eval`] vs [`Expr::eval`]) are replicated
//! exactly — same short-circuiting, same error messages, same rounding —
//! so lowering cannot perturb a prediction, only the wall clock.

use std::collections::HashMap;

use crate::expr::{sizeof, BinOp, Expr, ExprError, UnOp};
use crate::model::{CollOp, Model, MsgKind, Stmt};

fn err<T>(message: impl Into<String>) -> Result<T, ExprError> {
    Err(ExprError {
        message: message.into(),
    })
}

/// String-to-slot interner. Kept after lowering only for error messages
/// (`unbound variable …`) and for binding named parameters to slots.
#[derive(Debug, Default)]
pub(crate) struct Names {
    map: HashMap<String, u32>,
    list: Vec<String>,
}

impl Names {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.map.get(name) {
            return i;
        }
        let i = self.list.len() as u32;
        self.map.insert(name.to_string(), i);
        self.list.push(name.to_string());
        i
    }

    /// Slot of `name`, if the lowered program references it.
    pub(crate) fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    pub(crate) fn name(&self, slot: u32) -> &str {
        &self.list[slot as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.list.len()
    }

    pub(crate) fn list(&self) -> &[String] {
        &self.list
    }
}

/// Unary builtins (arity checked at lowering time).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Fn1 {
    Ceil,
    Floor,
    Abs,
    Log2,
}

/// Binary builtins.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Fn2 {
    Min,
    Max,
}

/// A lowered expression: shape of [`Expr`] with variables as slot indices,
/// `sizeof` resolved, and builtin calls at fixed arity.
#[derive(Debug, Clone)]
pub(crate) enum LExpr {
    Num(f64),
    Var(u32),
    Unary(UnOp, Box<LExpr>),
    Binary(BinOp, Box<LExpr>, Box<LExpr>),
    Call1(Fn1, Box<LExpr>),
    Call2(Fn2, Box<LExpr>, Box<LExpr>),
}

impl LExpr {
    /// Evaluate against the slot environment. Mirrors [`Expr::eval`]
    /// exactly, including error messages.
    pub(crate) fn eval(&self, slots: &[Option<f64>], names: &Names) -> Result<f64, ExprError> {
        match self {
            LExpr::Num(v) => Ok(*v),
            LExpr::Var(i) => slots[*i as usize].ok_or_else(|| ExprError {
                message: format!("unbound variable {:?}", names.name(*i)),
            }),
            LExpr::Unary(op, e) => {
                let v = e.eval(slots, names)?;
                Ok(match op {
                    UnOp::Neg => -v,
                    UnOp::Not => {
                        if v == 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                })
            }
            LExpr::Binary(op, a, b) => {
                match op {
                    BinOp::And => {
                        return Ok(
                            if a.eval(slots, names)? != 0.0 && b.eval(slots, names)? != 0.0 {
                                1.0
                            } else {
                                0.0
                            },
                        )
                    }
                    BinOp::Or => {
                        return Ok(
                            if a.eval(slots, names)? != 0.0 || b.eval(slots, names)? != 0.0 {
                                1.0
                            } else {
                                0.0
                            },
                        )
                    }
                    _ => {}
                }
                let x = a.eval(slots, names)?;
                let y = b.eval(slots, names)?;
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            return err("division by zero");
                        }
                        x / y
                    }
                    BinOp::Mod => {
                        let yi = y.trunc();
                        if yi == 0.0 {
                            return err("modulo by zero");
                        }
                        (x.trunc() as i64).rem_euclid(yi as i64) as f64
                    }
                    BinOp::Eq => (x == y) as u8 as f64,
                    BinOp::Ne => (x != y) as u8 as f64,
                    BinOp::Lt => (x < y) as u8 as f64,
                    BinOp::Le => (x <= y) as u8 as f64,
                    BinOp::Gt => (x > y) as u8 as f64,
                    BinOp::Ge => (x >= y) as u8 as f64,
                    BinOp::And | BinOp::Or => unreachable!(),
                })
            }
            LExpr::Call1(f, a) => {
                let a = a.eval(slots, names)?;
                Ok(match f {
                    Fn1::Ceil => a.ceil(),
                    Fn1::Floor => a.floor(),
                    Fn1::Abs => a.abs(),
                    Fn1::Log2 => {
                        if a <= 0.0 {
                            return err("log2 of non-positive value");
                        }
                        a.log2()
                    }
                })
            }
            LExpr::Call2(f, a, b) => {
                let a = a.eval(slots, names)?;
                let b = b.eval(slots, names)?;
                Ok(match f {
                    Fn2::Min => a.min(b),
                    Fn2::Max => a.max(b),
                })
            }
        }
    }

    /// Evaluate as a boolean (non-zero = true).
    pub(crate) fn eval_bool(
        &self,
        slots: &[Option<f64>],
        names: &Names,
    ) -> Result<bool, ExprError> {
        Ok(self.eval(slots, names)? != 0.0)
    }

    /// Evaluate as a non-negative integer (rounded), mirroring
    /// [`Expr::eval_usize`].
    pub(crate) fn eval_usize(
        &self,
        slots: &[Option<f64>],
        names: &Names,
    ) -> Result<usize, ExprError> {
        let v = self.eval(slots, names)?;
        if !v.is_finite() || v < -0.5 {
            return err(format!("expected a non-negative integer, got {v}"));
        }
        Ok(v.round() as usize)
    }

    fn has_var(&self) -> bool {
        match self {
            LExpr::Num(_) => false,
            LExpr::Var(_) => true,
            LExpr::Unary(_, e) | LExpr::Call1(_, e) => e.has_var(),
            LExpr::Binary(_, a, b) | LExpr::Call2(_, a, b) => a.has_var() || b.has_var(),
        }
    }

    /// True when the expression reads variable slot `slot`. The
    /// dependency-graph pass ([`crate::dag`]) uses this to decide whether a
    /// loop body's communication endpoints can vary across iterations.
    pub(crate) fn references(&self, slot: u32) -> bool {
        match self {
            LExpr::Num(_) => false,
            LExpr::Var(i) => *i == slot,
            LExpr::Unary(_, e) | LExpr::Call1(_, e) => e.references(slot),
            LExpr::Binary(_, a, b) | LExpr::Call2(_, a, b) => {
                a.references(slot) || b.references(slot)
            }
        }
    }
}

/// An interned directive label: the text (borrowed from the model) plus a
/// dense slot used for O(1) loss attribution in the VM — accumulating
/// blocked time under a label is an indexed add, not a string-keyed map
/// operation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Label<'m> {
    pub(crate) slot: u32,
    pub(crate) text: &'m str,
}

/// A lowered directive. Labels borrow from the model.
#[derive(Debug)]
pub(crate) enum LStmt<'m> {
    Loop {
        count: LExpr,
        var: Option<u32>,
        body: Vec<LStmt<'m>>,
    },
    Runon {
        branches: Vec<(LExpr, Vec<LStmt<'m>>)>,
    },
    Message {
        kind: MsgKind,
        size: LExpr,
        from: LExpr,
        to: LExpr,
        handle: Option<u32>,
        handle_name: Option<&'m str>,
        label: Option<Label<'m>>,
    },
    Wait {
        handle: u32,
        handle_name: &'m str,
        label: Option<Label<'m>>,
    },
    Serial {
        time: LExpr,
        label: Option<Label<'m>>,
    },
    Collective {
        op: CollOp,
        size: LExpr,
        label: Option<Label<'m>>,
    },
}

/// A model compiled for slot-indexed execution.
#[derive(Debug)]
pub(crate) struct LoweredModel<'m> {
    pub(crate) stmts: Vec<LStmt<'m>>,
    pub(crate) names: Names,
    /// Slot of the standard `procnum` variable.
    pub(crate) procnum: u32,
    /// Slot of the standard `numprocs` variable.
    pub(crate) numprocs: u32,
    /// Number of distinct `Irecv`/`Wait` handle names.
    pub(crate) nhandles: usize,
    /// Interned directive labels, indexed by [`Label::slot`].
    pub(crate) labels: Names,
}

/// Lower `model.stmts`, with constant folding made optional. Errors only
/// on programs that could never evaluate (unknown builtin, bad `sizeof`)
/// — valid models always lower. Folding is a pure
/// optimisation — `fold: false` must produce bitwise-identical evaluations
/// — which is exactly what the differential conformance harness
/// (`pevpm-testkit`) checks by running both variants over fuzzed programs.
pub(crate) fn lower_model_with(model: &Model, fold: bool) -> Result<LoweredModel<'_>, ExprError> {
    let mut names = Names::default();
    let procnum = names.intern("procnum");
    let numprocs = names.intern("numprocs");
    let mut handles = Names::default();
    let mut labels = Names::default();
    let mut cx = LowerCx {
        names: &mut names,
        handles: &mut handles,
        labels: &mut labels,
        fold,
    };
    let stmts = lower_block(&model.stmts, &mut cx)?;
    Ok(LoweredModel {
        stmts,
        names,
        procnum,
        numprocs,
        nhandles: handles.len(),
        labels,
    })
}

/// Shared lowering state: the three interners plus the fold switch.
struct LowerCx<'a> {
    names: &'a mut Names,
    handles: &'a mut Names,
    labels: &'a mut Names,
    fold: bool,
}

fn lower_label<'m>(label: &'m Option<String>, labels: &mut Names) -> Option<Label<'m>> {
    label.as_deref().map(|text| Label {
        slot: labels.intern(text),
        text,
    })
}

fn lower_block<'m>(stmts: &'m [Stmt], cx: &mut LowerCx<'_>) -> Result<Vec<LStmt<'m>>, ExprError> {
    stmts.iter().map(|s| lower_stmt(s, cx)).collect()
}

fn lower_stmt<'m>(stmt: &'m Stmt, cx: &mut LowerCx<'_>) -> Result<LStmt<'m>, ExprError> {
    Ok(match stmt {
        Stmt::Loop { count, var, body } => LStmt::Loop {
            count: lower_expr_in(count, cx)?,
            var: var.as_ref().map(|v| cx.names.intern(v)),
            body: lower_block(body, cx)?,
        },
        Stmt::Runon { branches } => LStmt::Runon {
            branches: branches
                .iter()
                .map(|(cond, body)| Ok((lower_expr_in(cond, cx)?, lower_block(body, cx)?)))
                .collect::<Result<_, ExprError>>()?,
        },
        Stmt::Message {
            kind,
            size,
            from,
            to,
            handle,
            label,
        } => LStmt::Message {
            kind: *kind,
            size: lower_expr_in(size, cx)?,
            from: lower_expr_in(from, cx)?,
            to: lower_expr_in(to, cx)?,
            handle: handle.as_ref().map(|h| cx.handles.intern(h)),
            handle_name: handle.as_deref(),
            label: lower_label(label, cx.labels),
        },
        Stmt::Wait { handle, label } => LStmt::Wait {
            handle: cx.handles.intern(handle),
            handle_name: handle.as_str(),
            label: lower_label(label, cx.labels),
        },
        Stmt::Serial { time, label, .. } => LStmt::Serial {
            time: lower_expr_in(time, cx)?,
            label: lower_label(label, cx.labels),
        },
        Stmt::Collective { op, size, label } => LStmt::Collective {
            op: *op,
            size: lower_expr_in(size, cx)?,
            label: lower_label(label, cx.labels),
        },
    })
}

fn lower_expr_in(e: &Expr, cx: &mut LowerCx<'_>) -> Result<LExpr, ExprError> {
    lower_expr_opts(e, cx.names, cx.fold)
}

#[cfg(test)]
fn lower_expr(e: &Expr, names: &mut Names) -> Result<LExpr, ExprError> {
    lower_expr_opts(e, names, true)
}

fn lower_expr_opts(e: &Expr, names: &mut Names, do_fold: bool) -> Result<LExpr, ExprError> {
    let l = match e {
        Expr::Num(v) => LExpr::Num(*v),
        Expr::Var(n) => LExpr::Var(names.intern(n)),
        Expr::Unary(op, a) => LExpr::Unary(*op, Box::new(lower_expr_opts(a, names, do_fold)?)),
        Expr::Binary(op, a, b) => LExpr::Binary(
            *op,
            Box::new(lower_expr_opts(a, names, do_fold)?),
            Box::new(lower_expr_opts(b, names, do_fold)?),
        ),
        Expr::Call(name, args) => {
            if name == "sizeof" {
                if args.len() != 1 {
                    return err("sizeof takes exactly one argument");
                }
                LExpr::Num(sizeof(&args[0])?)
            } else {
                match (name.as_str(), args.len()) {
                    ("min", 2) => LExpr::Call2(
                        Fn2::Min,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                        Box::new(lower_expr_opts(&args[1], names, do_fold)?),
                    ),
                    ("max", 2) => LExpr::Call2(
                        Fn2::Max,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                        Box::new(lower_expr_opts(&args[1], names, do_fold)?),
                    ),
                    ("ceil", 1) => LExpr::Call1(
                        Fn1::Ceil,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                    ),
                    ("floor", 1) => LExpr::Call1(
                        Fn1::Floor,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                    ),
                    ("abs", 1) => LExpr::Call1(
                        Fn1::Abs,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                    ),
                    ("log2", 1) => LExpr::Call1(
                        Fn1::Log2,
                        Box::new(lower_expr_opts(&args[0], names, do_fold)?),
                    ),
                    (_, n) => {
                        return err(format!("unknown function {name:?} with {n} args"));
                    }
                }
            }
        }
    };
    Ok(if do_fold { fold(l, names) } else { l })
}

/// Constant-fold a variable-free subtree. Subtrees whose evaluation errors
/// (division by zero, log2 domain) are kept symbolic so the error is
/// raised at execution time, exactly as the interpreter would.
fn fold(l: LExpr, names: &Names) -> LExpr {
    if matches!(l, LExpr::Num(_)) || l.has_var() {
        return l;
    }
    match l.eval(&[], names) {
        Ok(v) => LExpr::Num(v),
        Err(_) => l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{parse, Env};

    fn lower(src: &str) -> (LExpr, Names) {
        let mut names = Names::default();
        let l = lower_expr(&parse(src).unwrap(), &mut names).unwrap();
        (l, names)
    }

    #[test]
    fn folds_sizeof_and_constants() {
        let (l, _) = lower("4*sizeof(float)+1");
        assert!(matches!(l, LExpr::Num(v) if v == 17.0));
    }

    #[test]
    fn keeps_erroring_subtree_symbolic() {
        let (l, names) = lower("1/0");
        assert!(!matches!(l, LExpr::Num(_)));
        assert_eq!(l.eval(&[], &names).unwrap_err().message, "division by zero");
    }

    #[test]
    fn slot_eval_matches_interpreter() {
        for src in [
            "xsize*sizeof(float)",
            "procnum%2==0 && procnum<numprocs-1",
            "max(ceil(n/4), min(n, 3)) + log2(8)",
            "-n + abs(0-n) + (n>=2)*7",
        ] {
            let e = parse(src).unwrap();
            let mut env = Env::default();
            for (k, v) in [
                ("xsize", 256.0),
                ("procnum", 3.0),
                ("numprocs", 8.0),
                ("n", 6.0),
            ] {
                env.insert(k.to_string(), v);
            }
            let mut names = Names::default();
            let l = lower_expr(&e, &mut names).unwrap();
            let mut slots = vec![None; names.len()];
            for (k, v) in [
                ("xsize", 256.0),
                ("procnum", 3.0),
                ("numprocs", 8.0),
                ("n", 6.0),
            ] {
                if let Some(i) = names.get(k) {
                    slots[i as usize] = Some(v);
                }
            }
            let a = e.eval(&env).unwrap();
            let b = l.eval(&slots, &names).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{src}");
        }
    }

    #[test]
    fn unbound_variable_message_matches() {
        let e = parse("missing+1").unwrap();
        let mut names = Names::default();
        let l = lower_expr(&e, &mut names).unwrap();
        let slots = vec![None; names.len()];
        assert_eq!(
            l.eval(&slots, &names).unwrap_err(),
            e.eval(&Env::default()).unwrap_err()
        );
    }

    #[test]
    fn unfolded_lowering_evaluates_identically() {
        for src in [
            "4*sizeof(float)+1",
            "max(ceil(6/4), min(6, 3)) + log2(8)",
            "1+2*3-4/2",
        ] {
            let e = parse(src).unwrap();
            let mut names = Names::default();
            let folded = lower_expr_opts(&e, &mut names, true).unwrap();
            let mut names2 = Names::default();
            let plain = lower_expr_opts(&e, &mut names2, false).unwrap();
            assert!(matches!(folded, LExpr::Num(_)), "{src} should fold");
            assert!(!matches!(plain, LExpr::Num(_)), "{src} should stay a tree");
            let a = folded.eval(&[], &names).unwrap();
            let b = plain.eval(&[], &names2).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{src}");
        }
    }

    #[test]
    fn unknown_function_errors_at_lower_time() {
        let e = parse("frob(1)").unwrap();
        let mut names = Names::default();
        assert_eq!(
            lower_expr(&e, &mut names).unwrap_err().message,
            "unknown function \"frob\" with 1 args"
        );
    }
}
