//! Timing models: where the virtual machine gets communication times from.
//!
//! The paper's central claim is that *how* you turn benchmark data into
//! per-message times decides prediction quality. The options compared in
//! Figure 6 are all expressible here:
//!
//! - [`PredictionMode::FullDistribution`] over the full `n×p` benchmark
//!   database — the PEVPM method (Monte-Carlo sampling, contention-aware);
//! - [`PredictionMode::Average`] / [`PredictionMode::Minimum`] — collapse
//!   each distribution to a single point (what conventional benchmarks
//!   report);
//! - combined with either the full contention-indexed database or a
//!   ping-pong-only (`2×1`) slice via [`TimingModel::pingpong_only`].
//!
//! A purely analytic [`TimingModel::hockney`] (`T = l + b/W`) is included
//! as the classic textbook baseline.

use pevpm_dist::{CompileOptions, CompiledTable, DistTable, Op, PointKind};
use rand::Rng;

/// How per-message times are drawn from the benchmark data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionMode {
    /// Sample the full probability distribution (the PEVPM method).
    FullDistribution,
    /// Use the distribution's mean (conventional benchmarks).
    Average,
    /// Use the distribution's minimum (ideal ping-pong).
    Minimum,
}

impl std::fmt::Display for PredictionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictionMode::FullDistribution => write!(f, "dist"),
            PredictionMode::Average => write!(f, "avg"),
            PredictionMode::Minimum => write!(f, "min"),
        }
    }
}

/// A source of communication times for the PEVPM virtual machine.
#[derive(Debug, Clone)]
pub enum TimingModel {
    /// Empirical: backed by an MPIBench database.
    Empirical {
        /// The benchmark database (possibly pre-collapsed or sliced).
        table: DistTable,
        /// The table compiled for the allocation-free sampling fast path
        /// ([`pevpm_dist::compiled`]). `None` only for models built with
        /// [`TimingModel::interpreted`], which exists so benchmarks can
        /// measure the compiled path's speedup; every normal constructor
        /// compiles. Queries answer bitwise identically either way for
        /// histogram/point tables.
        compiled: Option<CompiledTable>,
        /// Sampling mode.
        mode: PredictionMode,
        /// If set, every query uses this fixed contention level instead of
        /// the scoreboard's (the "2×1 ping-pong data" baselines).
        fixed_contention: Option<f64>,
    },
    /// Analytic Hockney model `T = latency + bytes / bandwidth`,
    /// contention-blind.
    Hockney {
        /// Link latency in seconds.
        latency: f64,
        /// Effective bandwidth in bytes per second.
        bandwidth: f64,
    },
}

impl TimingModel {
    /// Compile `table` for the sampling fast path.
    ///
    /// # Panics
    /// Panics when the table fails validation (an empty histogram —
    /// nothing to sample from). The `.dist` loader rejects such tables at
    /// parse time, so this fires only on malformed programmatic tables.
    fn compile(table: &DistTable, options: CompileOptions) -> CompiledTable {
        CompiledTable::compile_with(table, options)
            .unwrap_or_else(|e| panic!("invalid benchmark table: {e}"))
    }

    /// The PEVPM method: full distributions, contention-indexed.
    ///
    /// # Panics
    /// Panics on a table with an empty histogram (see
    /// [`DistTable::validate`]).
    pub fn distributions(table: DistTable) -> Self {
        Self::distributions_with(table, CompileOptions::default())
    }

    /// [`TimingModel::distributions`] with explicit compile options — e.g.
    /// `exact_quantiles` to answer `Fit` quantiles by the exact bisection
    /// instead of the lookup table (the CLI's `--exact-quantiles`).
    ///
    /// # Panics
    /// Panics on a table with an empty histogram.
    pub fn distributions_with(table: DistTable, options: CompileOptions) -> Self {
        TimingModel::Empirical {
            compiled: Some(Self::compile(&table, options)),
            table,
            mode: PredictionMode::FullDistribution,
            fixed_contention: None,
        }
    }

    /// The PEVPM method *without* the compiled fast path: every query runs
    /// the interpreted [`DistTable`] lookup. Exists so benchmarks can
    /// measure the compiled path's speedup; predictions are bitwise
    /// identical for histogram/point tables.
    pub fn interpreted(table: DistTable) -> Self {
        TimingModel::Empirical {
            table,
            compiled: None,
            mode: PredictionMode::FullDistribution,
            fixed_contention: None,
        }
    }

    /// Point-statistic mode over the full contention-indexed database
    /// ("averages from MPIBench n×p process benchmarks" in §6).
    ///
    /// # Panics
    /// Panics on a table with an empty histogram.
    pub fn point(table: DistTable, kind: PointKind) -> Self {
        let mode = match kind {
            PointKind::Average => PredictionMode::Average,
            PointKind::Minimum => PredictionMode::Minimum,
        };
        TimingModel::Empirical {
            compiled: Some(Self::compile(&table, CompileOptions::default())),
            table,
            mode,
            fixed_contention: None,
        }
    }

    /// Restrict the database to its lowest measured contention level (the
    /// 2×1 ping-pong slice) and answer every query from it — what a
    /// conventional benchmark provides.
    ///
    /// # Panics
    /// Panics on a table with an empty histogram.
    pub fn pingpong_only(table: &DistTable, mode: PredictionMode) -> Self {
        let level = table
            .ops()
            .flat_map(|op| table.contentions(op))
            .min()
            .unwrap_or(1);
        let table = table.at_contention(level);
        TimingModel::Empirical {
            compiled: Some(Self::compile(&table, CompileOptions::default())),
            table,
            mode,
            fixed_contention: Some(level as f64),
        }
    }

    /// The analytic `T = l + b/W` model.
    pub fn hockney(latency: f64, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        TimingModel::Hockney { latency, bandwidth }
    }

    /// Draw the end-to-end time for one message of `size` bytes under
    /// `contention` concurrent messages.
    pub fn comm_time<R: Rng + ?Sized>(
        &self,
        op: Op,
        size: f64,
        contention: f64,
        rng: &mut R,
    ) -> Option<f64> {
        self.quantile_time(op, size, contention, rng.gen::<f64>())
    }

    /// The end-to-end time at a given probability `u` of the distribution
    /// for `(op, size, contention)`. In the point modes the result is the
    /// mean/minimum regardless of `u`. The PEVPM virtual machine draws one
    /// `u` per message and reuses it for both the sender-side cost and the
    /// transit time, so correlated effects (e.g. the intra-node vs
    /// inter-node modes of a bimodal SMP distribution) stay correlated.
    pub fn quantile_time(&self, op: Op, size: f64, contention: f64, u: f64) -> Option<f64> {
        match self {
            TimingModel::Empirical {
                table,
                compiled,
                mode,
                fixed_contention,
            } => {
                let c = fixed_contention.unwrap_or(contention);
                match (mode, compiled) {
                    (PredictionMode::FullDistribution, Some(ct)) => ct.quantile_at(op, size, c, u),
                    (PredictionMode::FullDistribution, None) => table.quantile_at(op, size, c, u),
                    (PredictionMode::Average, Some(ct)) => ct.mean_at(op, size, c),
                    (PredictionMode::Average, None) => table.mean_at(op, size, c),
                    (PredictionMode::Minimum, Some(ct)) => ct.min_at(op, size, c),
                    (PredictionMode::Minimum, None) => table.min_at(op, size, c),
                }
            }
            TimingModel::Hockney { latency, bandwidth } => Some(latency + size / bandwidth),
        }
    }

    /// The fraction of a message's end-to-end time spent on the sender
    /// side (software overhead + first-link NIC serialisation, plus the
    /// mean queueing of back-to-back sends) before the sender can proceed.
    /// Calibrated against the Jacobi halo exchange; see EXPERIMENTS.md.
    pub const SENDER_SHARE: f64 = 0.56;

    /// The sender-side (local) cost of injecting a message: until this
    /// time elapses the sender can neither compute nor inject its *next*
    /// message (its NIC is still serialising this one). Modelled as a
    /// fraction of the contention-free minimum transfer time: software
    /// overhead (~37 us) plus first-link NIC serialisation (~85 us for a
    /// 1 KiB frame) is ~0.48 of the ~254 us end-to-end minimum on the
    /// Perseus-like store-and-forward path.
    /// Falls back between Send/Isend data like [`TimingModel::comm_time`].
    pub fn send_local_cost(&self, op: Op, size: f64) -> f64 {
        match self {
            TimingModel::Empirical {
                table,
                compiled,
                fixed_contention,
                ..
            } => {
                let c = fixed_contention.unwrap_or(1.0);
                let alt = if op == Op::Send { Op::Isend } else { Op::Send };
                let min_at = |o: Op| match compiled {
                    Some(ct) => ct.min_at(o, size, c),
                    None => table.min_at(o, size, c),
                };
                min_at(op)
                    .or_else(|| min_at(alt))
                    .map(|m| m * Self::SENDER_SHARE)
                    .unwrap_or(0.0)
            }
            TimingModel::Hockney { latency, bandwidth } => {
                (latency + size / bandwidth) * Self::SENDER_SHARE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm_dist::{CommDist, DistKey, Histogram};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn table() -> DistTable {
        let mut t = DistTable::new();
        for &(c, lo) in &[(1u32, 100.0f64), (8, 200.0)] {
            let h = Histogram::from_samples(&[lo, lo + 10.0, lo + 20.0], 1.0);
            t.insert(
                DistKey {
                    op: Op::Send,
                    size: 1024,
                    contention: c,
                },
                CommDist::Hist(h),
            );
        }
        t
    }

    #[test]
    fn distribution_mode_is_contention_aware() {
        let m = TimingModel::distributions(table());
        let mut rng = SmallRng::seed_from_u64(1);
        let lo = m.comm_time(Op::Send, 1024.0, 1.0, &mut rng).unwrap();
        let hi = m.comm_time(Op::Send, 1024.0, 8.0, &mut rng).unwrap();
        assert!((100.0..=120.0).contains(&lo), "lo = {lo}");
        assert!((200.0..=220.0).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn average_and_minimum_modes_are_points() {
        let avg = TimingModel::point(table(), PointKind::Average);
        let min = TimingModel::point(table(), PointKind::Minimum);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..5 {
            assert_eq!(avg.comm_time(Op::Send, 1024.0, 1.0, &mut rng), Some(110.0));
            assert_eq!(min.comm_time(Op::Send, 1024.0, 1.0, &mut rng), Some(100.0));
        }
    }

    #[test]
    fn pingpong_slice_ignores_contention() {
        let m = TimingModel::pingpong_only(&table(), PredictionMode::Average);
        let mut rng = SmallRng::seed_from_u64(1);
        // Queries at high contention still answer from the 2×1 slice.
        assert_eq!(m.comm_time(Op::Send, 1024.0, 64.0, &mut rng), Some(110.0));
    }

    #[test]
    fn hockney_is_linear_in_size() {
        let m = TimingModel::hockney(1e-4, 12.5e6);
        let mut rng = SmallRng::seed_from_u64(1);
        let t1 = m.comm_time(Op::Send, 0.0, 1.0, &mut rng).unwrap();
        let t2 = m.comm_time(Op::Send, 12.5e6, 99.0, &mut rng).unwrap();
        assert!((t1 - 1e-4).abs() < 1e-12);
        assert!((t2 - 1.0001).abs() < 1e-9);
    }

    #[test]
    fn send_local_cost_is_fraction_of_min() {
        let m = TimingModel::distributions(table());
        let c = m.send_local_cost(Op::Send, 1024.0);
        assert!((c - 56.0).abs() < 1e-9, "c = {c}");
        // Falls back to the sibling op when only Isend was benchmarked.
        let mut t = DistTable::new();
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 1024,
                contention: 1,
            },
            CommDist::Point(100.0),
        );
        let m = TimingModel::distributions(t);
        assert!((m.send_local_cost(Op::Send, 1024.0) - 56.0).abs() < 1e-9);
    }

    #[test]
    fn compiled_and_interpreted_models_agree_bitwise() {
        let fast = TimingModel::distributions(table());
        let slow = TimingModel::interpreted(table());
        for &size in &[1.0, 512.0, 1024.0, 4096.0] {
            for &c in &[0.5, 1.0, 3.0, 8.0, 20.0] {
                for i in 0..=10 {
                    let u = i as f64 / 10.0;
                    assert_eq!(
                        fast.quantile_time(Op::Send, size, c, u).map(f64::to_bits),
                        slow.quantile_time(Op::Send, size, c, u).map(f64::to_bits),
                        "size={size} c={c} u={u}"
                    );
                }
            }
            assert_eq!(
                fast.send_local_cost(Op::Send, size).to_bits(),
                slow.send_local_cost(Op::Send, size).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid benchmark table")]
    fn empty_histogram_table_is_rejected_at_construction() {
        let mut t = DistTable::new();
        t.insert(
            DistKey {
                op: Op::Send,
                size: 8,
                contention: 1,
            },
            CommDist::Hist(Histogram::new(0.0, 1.0)),
        );
        let _ = TimingModel::distributions(t);
    }

    #[test]
    fn missing_data_yields_none() {
        let m = TimingModel::distributions(DistTable::new());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.comm_time(Op::Send, 1.0, 1.0, &mut rng), None);
    }
}
