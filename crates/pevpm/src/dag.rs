//! Intra-evaluation parallelism: SCC/DAG decomposition of the model
//! program and concurrent component scheduling.
//!
//! The virtual ranks of a lowered program plus its message endpoints form
//! a dependency graph: an edge `p → q` means q's progress can wait on p
//! (an eager send feeds a receive), and a cycle (Jacobi halo-exchange
//! rings, rendezvous pairs, wildcard races) means the ranks must be
//! co-scheduled. Tarjan's SCC condenses the cycles into components; the
//! condensation is a DAG, and each component can be evaluated by the
//! existing serial sweep/match engine against its own scoreboard
//! partition. Components with no unfinished predecessors run concurrently
//! on a scoped pool ([`crate::replicate`]).
//!
//! Determinism contract (the same one PR 1's `base + i` seeding gives
//! replications): predictions are **bitwise identical at any
//! `eval_threads >= 1`**. Every component's RNG stream is a pure function
//! of `(cfg.seed, component index)`, cross-component messages carry
//! arrival times fixed by the sending component, and merges walk
//! components in index order — so the thread count can only change wall
//! time, never a bit of the prediction. Programs that condense to a
//! single component (and programs the analysis declines, e.g. any
//! collective) take the unrestricted engine path with `cfg.seed` itself,
//! which is bit-for-bit the serial evaluation.
//!
//! Graph construction runs the directive program *abstractly*: control
//! flow in the directive language is time-independent (expressions read
//! parameters and loop variables, never clocks), so endpoints can be
//! enumerated without evaluating timing. Loop bodies whose
//! endpoint-relevant expressions don't reference the induction variable
//! are walked once; anything the analysis cannot bound (step cap,
//! expression errors the real run would also hit) falls back to the
//! serial path rather than guessing.

use crate::lower::{LExpr, LStmt};
use crate::model::{Model, MsgKind};
use crate::replicate::{self, JobError};
use crate::timing::TimingModel;
use crate::vm::{self, EvalConfig, PevpmError, Prediction};
use std::collections::BTreeSet;

/// Per-process directive cap for the abstract graph walk. Expansion of a
/// variable-endpoint loop costs one unit per iteration; beyond the cap
/// the analysis falls back to the serial engine instead of spinning.
const ANALYSIS_STEP_CAP: u64 = 1 << 18;

/// The scheduler's decomposition of one program, as reported to callers
/// (the conformance oracle keys its expectations on `components`).
#[derive(Debug, Clone)]
pub struct DagPlan {
    /// Number of SCC components the ranks condensed into.
    pub components: usize,
    /// Edges in the condensed DAG.
    pub edges: usize,
    /// Why the analysis declined and the evaluation will take the serial
    /// path (`None` when the decomposition is in effect). Single-component
    /// programs also run serially but are not a fallback.
    pub fallback: Option<String>,
}

/// Analyse a model without evaluating it: how would the DAG scheduler
/// decompose it? Used by the serial-vs-DAG oracle to know when bitwise
/// identity with the serial engine is required.
pub fn plan(model: &Model, cfg: &EvalConfig) -> Result<DagPlan, PevpmError> {
    let setup = vm::prepare(model, cfg)?;
    Ok(match analyze(&setup, cfg) {
        Decision::Fallback(reason) => DagPlan {
            components: 1,
            edges: 0,
            fallback: Some(reason.to_string()),
        },
        Decision::Single => DagPlan {
            components: 1,
            edges: 0,
            fallback: None,
        },
        Decision::Dag(a) => DagPlan {
            components: a.components.len(),
            edges: a.edges.len(),
            fallback: None,
        },
    })
}

/// Component seed: a splitmix64-style mix of `(base seed, component
/// index)`. Decorrelates per-component RNG streams while staying a pure
/// function of its inputs — the root of the thread-count-invariance
/// contract.
fn component_seed(base: u64, comp: u64) -> u64 {
    let mut z = base ^ comp.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Divergence drill hook (compile-time, like `pevpm-dist`'s ULP
/// injection): rotating the component→seed assignment when the scheduler
/// actually runs concurrently simulates a merge-order bug, which the
/// serial-vs-DAG oracle must catch as a thread-count divergence.
#[cfg(feature = "divergence-injection")]
fn maybe_perturb_seeds(seeds: &mut [u64], eval_threads: usize) {
    if eval_threads > 1 && seeds.len() > 1 {
        seeds.rotate_left(1);
    }
}

#[cfg(not(feature = "divergence-injection"))]
fn maybe_perturb_seeds(_seeds: &mut [u64], _eval_threads: usize) {}

enum Decision {
    /// The analysis declined (collective, step cap, abstract-eval error);
    /// run the serial engine, which reproduces any real error exactly.
    Fallback(&'static str),
    /// Everything condensed into one component: the serial engine *is*
    /// the component run.
    Single,
    /// A genuine multi-component DAG.
    Dag(Analysis),
}

struct Analysis {
    /// Component id of each rank; components are numbered by ascending
    /// minimum rank.
    comp_of: Vec<usize>,
    /// Member ranks per component, ascending.
    components: Vec<Vec<usize>>,
    /// Condensed DAG edges `(from component, to component)`, sorted,
    /// deduplicated.
    edges: Vec<(usize, usize)>,
}

enum Bail {
    /// A collective joins every rank: one component by construction.
    Collective,
    /// Step cap or an expression error — decline, don't guess.
    Decline(&'static str),
}

/// Abstract walk of one rank's directive chain, collecting message edges.
struct Tracer<'a, 'm> {
    lowered: &'a crate::lower::LoweredModel<'m>,
    env: Vec<Option<f64>>,
    p: usize,
    nprocs: usize,
    rndv_threshold: f64,
    steps: u64,
    /// Directed edges out of every rank (dedup via set).
    adj: &'a mut Vec<BTreeSet<usize>>,
    /// Static senders per destination rank, for the wildcard pass.
    senders_to: &'a mut Vec<BTreeSet<usize>>,
    /// Ranks that execute at least one wildcard receive.
    wildcards: &'a mut BTreeSet<usize>,
}

impl<'a, 'm> Tracer<'a, 'm> {
    fn bump(&mut self) -> Result<(), Bail> {
        self.steps += 1;
        if self.steps > ANALYSIS_STEP_CAP {
            return Err(Bail::Decline("analysis step cap exceeded"));
        }
        Ok(())
    }

    fn walk(&mut self, stmts: &[LStmt<'_>]) -> Result<(), Bail> {
        let names = &self.lowered.names;
        for stmt in stmts {
            self.bump()?;
            match stmt {
                LStmt::Serial { .. } | LStmt::Wait { .. } => {}
                LStmt::Loop { count, var, body } => {
                    let n = count
                        .eval_usize(&self.env, names)
                        .map_err(|_| Bail::Decline("abstract evaluation failed"))?
                        as u64;
                    if n == 0 || body.is_empty() {
                        continue;
                    }
                    match var {
                        Some(slot) if block_references(body, *slot) => {
                            // Endpoint-relevant expressions read the
                            // induction variable: expand every iteration.
                            for i in 0..n {
                                self.env[*slot as usize] = Some(i as f64);
                                self.walk(body)?;
                            }
                            self.env[*slot as usize] = None;
                        }
                        Some(slot) => {
                            // Iteration-invariant endpoints: one pass
                            // covers the whole loop.
                            self.env[*slot as usize] = Some(0.0);
                            self.walk(body)?;
                            self.env[*slot as usize] = None;
                        }
                        None => self.walk(body)?,
                    }
                }
                LStmt::Runon { branches } => {
                    for (cond, body) in branches {
                        if cond
                            .eval_bool(&self.env, names)
                            .map_err(|_| Bail::Decline("abstract evaluation failed"))?
                        {
                            self.walk(body)?;
                            break;
                        }
                    }
                }
                LStmt::Message {
                    kind,
                    size,
                    from,
                    to,
                    ..
                } => self.message(*kind, size, from, to)?,
                LStmt::Collective { .. } => return Err(Bail::Collective),
            }
        }
        Ok(())
    }

    /// Mirror the VM's endpoint evaluation; anything the VM would reject
    /// as `BadModel` declines the analysis, so the serial path reproduces
    /// the real error.
    fn message(
        &mut self,
        kind: MsgKind,
        size: &LExpr,
        from: &LExpr,
        to: &LExpr,
    ) -> Result<(), Bail> {
        let names = &self.lowered.names;
        let bad = |_| Bail::Decline("abstract evaluation failed");
        let from_raw = from.eval(&self.env, names).map_err(bad)?;
        let wildcard = from_raw < -0.5 && kind == MsgKind::Recv;
        let from_v = if wildcard {
            0
        } else if !from_raw.is_finite() || from_raw < -0.5 {
            return Err(Bail::Decline("abstract evaluation failed"));
        } else {
            from_raw.round() as usize
        };
        let to_v = to.eval_usize(&self.env, names).map_err(bad)?;
        if (!wildcard && from_v >= self.nprocs) || to_v >= self.nprocs {
            return Err(Bail::Decline("message endpoint out of range"));
        }
        match kind {
            MsgKind::Send | MsgKind::Isend => {
                if from_v != self.p {
                    return Err(Bail::Decline("send executed by a foreign rank"));
                }
                let size_v = size.eval(&self.env, names).map_err(bad)?;
                self.adj[self.p].insert(to_v);
                self.senders_to[to_v].insert(self.p);
                // A rendezvous send blocks until the receiver matches:
                // the dependency runs both ways.
                if kind == MsgKind::Send && size_v >= self.rndv_threshold {
                    self.adj[to_v].insert(self.p);
                }
            }
            MsgKind::Recv | MsgKind::Irecv => {
                if to_v != self.p {
                    return Err(Bail::Decline("recv executed by a foreign rank"));
                }
                if kind == MsgKind::Irecv && wildcard {
                    return Err(Bail::Decline("wildcard irecv"));
                }
                if wildcard {
                    self.wildcards.insert(self.p);
                } else {
                    // A blocking (or waited-on) receive makes p's clock
                    // depend on the sender's send times.
                    self.adj[from_v].insert(self.p);
                }
            }
        }
        Ok(())
    }
}

/// Does any endpoint-relevant expression in `stmts` read loop-variable
/// `slot`? Relevant: message endpoints and sizes (size picks rendezvous
/// semantics), runon conditions, nested loop counts. Serial times and
/// wait handles can't change the edge set.
fn block_references(stmts: &[LStmt<'_>], slot: u32) -> bool {
    stmts.iter().any(|s| match s {
        LStmt::Serial { .. } | LStmt::Wait { .. } => false,
        LStmt::Collective { .. } => false,
        LStmt::Loop { count, body, .. } => count.references(slot) || block_references(body, slot),
        LStmt::Runon { branches } => branches
            .iter()
            .any(|(c, b)| c.references(slot) || block_references(b, slot)),
        LStmt::Message { size, from, to, .. } => {
            from.references(slot) || to.references(slot) || size.references(slot)
        }
    })
}

/// Iterative Tarjan SCC over `adj`; returns an arbitrary component id per
/// node (renumbered by the caller).
fn tarjan(adj: &[Vec<usize>]) -> Vec<usize> {
    const UNVISITED: u32 = u32::MAX;
    let n = adj.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![usize::MAX; n];
    let mut next_index = 0u32;
    let mut ncomp = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));

        while let Some(&(v, child)) = call.last() {
            if child < adj[v].len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][child];
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    comp_of
}

fn analyze(setup: &vm::EvalSetup<'_>, cfg: &EvalConfig) -> Decision {
    let n = cfg.nprocs;
    if n <= 1 {
        return Decision::Single;
    }
    let lowered = &setup.lowered;
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut senders_to: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut wildcards: BTreeSet<usize> = BTreeSet::new();
    for p in 0..n {
        let mut env = setup.base.clone();
        env[lowered.procnum as usize] = Some(p as f64);
        let mut tracer = Tracer {
            lowered,
            env,
            p,
            nprocs: n,
            rndv_threshold: cfg.rndv_threshold,
            steps: 0,
            adj: &mut adj,
            senders_to: &mut senders_to,
            wildcards: &mut wildcards,
        };
        match tracer.walk(&lowered.stmts) {
            Ok(()) => {}
            Err(Bail::Collective) => return Decision::Single,
            Err(Bail::Decline(reason)) => return Decision::Fallback(reason),
        }
    }
    // A wildcard receive races every static sender to that rank: the race
    // must be resolved inside one component, so the edges run both ways.
    for &r in &wildcards {
        let senders: Vec<usize> = senders_to[r].iter().copied().collect();
        for s in senders {
            adj[s].insert(r);
            adj[r].insert(s);
        }
    }

    let adj_vec: Vec<Vec<usize>> = adj.iter().map(|s| s.iter().copied().collect()).collect();
    let raw = tarjan(&adj_vec);

    // Renumber components by ascending minimum member rank, so component
    // indices (and hence seeds and merge order) are canonical.
    let ncomp = raw.iter().map(|&c| c + 1).max().unwrap_or(0);
    if ncomp <= 1 {
        return Decision::Single;
    }
    let mut first_rank = vec![usize::MAX; ncomp];
    for p in 0..n {
        first_rank[raw[p]] = first_rank[raw[p]].min(p);
    }
    let mut order: Vec<usize> = (0..ncomp).collect();
    order.sort_by_key(|&c| first_rank[c]);
    let mut renum = vec![0usize; ncomp];
    for (new_id, &old_id) in order.iter().enumerate() {
        renum[old_id] = new_id;
    }
    let comp_of: Vec<usize> = raw.iter().map(|&c| renum[c]).collect();
    let mut components: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for p in 0..n {
        components[comp_of[p]].push(p);
    }
    let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (p, outs) in adj_vec.iter().enumerate() {
        for &q in outs {
            let (a, b) = (comp_of[p], comp_of[q]);
            if a != b {
                edge_set.insert((a, b));
            }
        }
    }
    Decision::Dag(Analysis {
        comp_of,
        components,
        edges: edge_set.into_iter().collect(),
    })
}

/// Evaluate via the DAG scheduler. Entry point for
/// [`crate::vm::evaluate`] when `cfg.eval_threads >= 1`.
pub(crate) fn evaluate_dag(
    model: &Model,
    cfg: &EvalConfig,
    timing: &TimingModel,
) -> Result<Prediction, PevpmError> {
    let setup = vm::prepare(model, cfg)?;
    let analysis = match analyze(&setup, cfg) {
        Decision::Dag(a) => a,
        decision => {
            // Single component or declined: the serial engine is the
            // component run — seeded with cfg.seed itself, this is
            // bit-for-bit the historical evaluation.
            let outcome = vm::run_lowered(&setup, cfg, timing, cfg.seed, None, &[])?;
            if let Some(registry) = &cfg.metrics {
                registry.counter("dag.evaluations").inc();
                registry.gauge("dag.components").set(1.0);
                registry.gauge("dag.workers").set(1.0);
                registry.gauge("dag.critical_path_fraction").set(1.0);
                if matches!(decision, Decision::Fallback(_)) {
                    registry.counter("dag.fallbacks").inc();
                }
            }
            return Ok(vm::finish_prediction(&setup, cfg, outcome));
        }
    };

    let ncomp = analysis.components.len();
    let mut seeds: Vec<u64> = (0..ncomp)
        .map(|c| component_seed(cfg.seed, c as u64))
        .collect();
    maybe_perturb_seeds(&mut seeds, cfg.eval_threads);

    // Activity masks per component.
    let masks: Vec<Vec<bool>> = analysis
        .components
        .iter()
        .map(|members| {
            let mut mask = vec![false; cfg.nprocs];
            for &p in members {
                mask[p] = true;
            }
            mask
        })
        .collect();

    // Kahn waves over the condensation: a component runs once all its
    // predecessors have, so every cross-component message it consumes is
    // already collected (with a fixed arrival) before it starts.
    let mut indeg = vec![0usize; ncomp];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for &(u, v) in &analysis.edges {
        succ[u].push(v);
        pred[v].push(u);
        indeg[v] += 1;
    }

    let mut outcomes: Vec<Option<vm::VmOutcome>> = (0..ncomp).map(|_| None).collect();
    let mut pending: Vec<Vec<vm::ExternalMsg>> = vec![Vec::new(); ncomp];
    let mut wave: Vec<usize> = (0..ncomp).filter(|&c| indeg[c] == 0).collect();
    let mut max_workers = 0usize;
    let mut worker_idle: Vec<f64> = Vec::new();

    while !wave.is_empty() {
        let workers = cfg.eval_threads.max(1).min(wave.len());
        max_workers = max_workers.max(workers);
        let run = {
            let wave = &wave;
            let pending = &pending;
            let setup = &setup;
            let seeds = &seeds;
            let masks = &masks;
            move |i: usize| {
                let c = wave[i];
                vm::run_lowered(setup, cfg, timing, seeds[c], Some(&masks[c]), &pending[c])
            }
        };
        let (results, profile) = replicate::try_parallel_map_profiled(wave.len(), workers, run)
            .map_err(|e| match e {
                JobError::Err(e) => e,
                JobError::Panic(p) => PevpmError::ReplicaPanic {
                    index: p.index.unwrap_or(0),
                    message: p.message,
                },
            })?;
        for w in &profile.workers {
            worker_idle.push((profile.wall_secs - w.busy_secs).max(0.0));
        }
        // Route boundary messages to their destination components in wave
        // order: ordering is by (component index, collection order), a
        // pure function of the decomposition — never of thread timing.
        for (i, outcome) in results.into_iter().enumerate() {
            let c = wave[i];
            for ext in &outcome.external {
                pending[analysis.comp_of[ext.to]].push(ext.clone());
            }
            outcomes[c] = Some(outcome);
        }
        let mut next: Vec<usize> = Vec::new();
        for &c in &wave {
            for &s in &succ[c] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    next.push(s);
                }
            }
        }
        next.sort_unstable();
        wave = next;
    }

    let outcomes: Vec<vm::VmOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every DAG component is scheduled"))
        .collect();

    // Deterministic merge, walking components in index order: per-rank
    // quantities come from the owning component, counters sum, the
    // scoreboard peak is the worst component's.
    let mut merged = vm::VmOutcome {
        clocks: vec![0.0; cfg.nprocs],
        compute_time: vec![0.0; cfg.nprocs],
        send_time: vec![0.0; cfg.nprocs],
        blocked_time: vec![0.0; cfg.nprocs],
        messages: 0,
        steps: 0,
        sb_peak: 0,
        races: Vec::new(),
        loss: vec![0.0; setup.lowered.labels.len()],
        loss_touched: vec![false; setup.lowered.labels.len()],
        timeline: cfg
            .record_timeline
            .then(|| (0..cfg.nprocs).map(|_| Vec::new()).collect()),
        external: Vec::new(),
    };
    for (c, outcome) in outcomes.iter().enumerate() {
        for &p in &analysis.components[c] {
            merged.clocks[p] = outcome.clocks[p];
            merged.compute_time[p] = outcome.compute_time[p];
            merged.send_time[p] = outcome.send_time[p];
            merged.blocked_time[p] = outcome.blocked_time[p];
        }
        merged.messages += outcome.messages;
        merged.steps += outcome.steps;
        merged.sb_peak = merged.sb_peak.max(outcome.sb_peak);
        merged.races.extend(outcome.races.iter().cloned());
        for (slot, loss) in outcome.loss.iter().enumerate() {
            merged.loss[slot] += loss;
            merged.loss_touched[slot] |= outcome.loss_touched[slot];
        }
    }
    if let Some(timeline) = &mut merged.timeline {
        for (c, outcome) in outcomes.iter().enumerate() {
            if let Some(t) = &outcome.timeline {
                for &p in &analysis.components[c] {
                    timeline[p] = t[p].clone();
                }
            }
        }
    }

    if let Some(registry) = &cfg.metrics {
        registry.counter("dag.evaluations").inc();
        registry.gauge("dag.components").set(ncomp as f64);
        registry.gauge("dag.workers").set(max_workers as f64);
        // Critical-path fraction: longest directive-weighted chain through
        // the condensation over total directives. 1.0 = fully serial
        // structure; 1/ncomp = perfectly parallel.
        let steps: Vec<u64> = outcomes.iter().map(|o| o.steps).collect();
        let total: u64 = steps.iter().sum();
        // Component ids follow minimum rank, not topological order, so
        // relax to a fixed point (the DAG has <= nprocs nodes).
        let mut chain = vec![0u64; ncomp];
        let mut changed = true;
        while changed {
            changed = false;
            for c in 0..ncomp {
                let best_pred = pred[c].iter().map(|&u| chain[u]).max().unwrap_or(0);
                let v = best_pred + steps[c];
                if v > chain[c] {
                    chain[c] = v;
                    changed = true;
                }
            }
        }
        let critical = chain.iter().copied().max().unwrap_or(0);
        let fraction = if total == 0 {
            1.0
        } else {
            critical as f64 / total as f64
        };
        registry.gauge("dag.critical_path_fraction").set(fraction);
        let idle = registry.histogram("dag.worker_idle_secs", 0.0, 1.0, 64);
        for secs in &worker_idle {
            idle.record(*secs);
        }
    }

    Ok(vm::finish_prediction(&setup, cfg, merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build::*;
    use crate::model::{CollOp, Model};

    /// Ranks {0,1} ping-pong among themselves; ranks {2,3} likewise.
    /// Two SCCs, no cross edges.
    fn two_island_model() -> Model {
        Model::new()
            .with_stmt(runon2(
                "procnum == 0",
                vec![send("256", "0", "1"), recv("256", "1", "0")],
                "procnum == 1",
                vec![recv("256", "0", "1"), send("256", "1", "0")],
            ))
            .with_stmt(runon2(
                "procnum == 2",
                vec![send("256", "2", "3"), recv("256", "3", "2")],
                "procnum == 3",
                vec![recv("256", "2", "3"), send("256", "3", "2")],
            ))
    }

    #[test]
    fn component_seed_is_stable() {
        assert_eq!(component_seed(1, 0), component_seed(1, 0));
        assert_ne!(component_seed(1, 0), component_seed(1, 1));
        assert_ne!(component_seed(1, 1), component_seed(2, 1));
    }

    #[test]
    fn two_islands_decompose() {
        let model = two_island_model();
        let cfg = EvalConfig::new(4);
        let p = plan(&model, &cfg).expect("plan");
        assert_eq!(p.components, 2);
        assert_eq!(p.edges, 0);
        assert!(p.fallback.is_none());
    }

    #[test]
    fn collectives_stay_single_component() {
        let model = Model::new().with_stmt(collective(CollOp::Barrier, "0"));
        let cfg = EvalConfig::new(4);
        let p = plan(&model, &cfg).expect("plan");
        assert_eq!(p.components, 1);
    }

    #[test]
    fn pipeline_chain_condenses_per_rank() {
        // 0 → 1 → 2, receives only: three components in a chain.
        let model = Model::new()
            .with_stmt(runon2(
                "procnum == 0",
                vec![send("64", "0", "1")],
                "procnum == 1",
                vec![recv("64", "0", "1"), send("64", "1", "2")],
            ))
            .with_stmt(runon("procnum == 2", vec![recv("64", "1", "2")]));
        let cfg = EvalConfig::new(3);
        let p = plan(&model, &cfg).expect("plan");
        assert_eq!(p.components, 3);
        assert_eq!(p.edges, 2);
    }

    #[test]
    fn tarjan_finds_ring_and_isolated_rank() {
        let adj = vec![vec![1], vec![2], vec![0], vec![]];
        let comp = tarjan(&adj);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn tarjan_handles_chains_and_self_cycles() {
        // 0 → 1, 1 → 1 (self loop), 2 isolated.
        let adj = vec![vec![1], vec![1], vec![]];
        let comp = tarjan(&adj);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }
}
