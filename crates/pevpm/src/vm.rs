//! The Performance Evaluating Virtual Parallel Machine.
//!
//! Implements the evaluation algorithm of §5: virtual processes execute the
//! directive program in interleaved **sweep** and **match** phases.
//!
//! - *Sweep*: every runnable process executes directives — advancing its
//!   virtual clock through `Serial` segments and posting `Send`/`Isend`
//!   message metadata onto the **contention scoreboard** — until it reaches
//!   a *decision point* (a blocking receive, a rendezvous-size blocking
//!   send, or a collective).
//! - *Match*: every scoreboard message that does not yet have an arrival
//!   time gets one by Monte-Carlo sampling from the timing model, as a
//!   function of its size and the **current scoreboard population** (the
//!   contention level). Arrived messages are matched to blocked receives in
//!   per-pair FIFO order; matched receivers resume at
//!   `max(block time, arrival)`, and matched messages leave the scoreboard.
//!
//! Evaluation alternates phases until every process finishes. If neither
//! phase can make progress the program is deadlocked, and the VM reports
//! which processes are blocked where — the paper's "automatically discover
//! program deadlock" capability. Blocked time is attributed to directive
//! labels, giving the per-source performance-loss report of §5.

use crate::expr::{Env, ExprError};
use crate::lower::{LStmt, Label, Names};
use crate::model::{CollOp, Model, MsgKind};
use crate::scoreboard::{Handle, PairFifo, Slab};
use crate::timing::TimingModel;
use pevpm_dist::Op;
use pevpm_obs::{Counter, FixedHistogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Number of virtual processes (`numprocs`).
    pub nprocs: usize,
    /// Extra parameter bindings, overriding the model's defaults.
    pub params: Env,
    /// RNG seed for Monte-Carlo sampling.
    pub seed: u64,
    /// Messages at least this large use blocking-rendezvous semantics for
    /// `Send` (the sender cannot complete before the receiver matches).
    pub rndv_threshold: f64,
    /// Resource limits for one evaluation: a runaway (livelocked or
    /// hostile) model is aborted with a structured
    /// [`PevpmError::Budget`] carrying partial results instead of
    /// spinning forever.
    pub budget: RunBudget,
    /// Replication quorum for [`monte_carlo`]: the prediction completes
    /// (with the failures surfaced in [`McPrediction::failures`]) if at
    /// least this many replications succeed. `None` requires **all**
    /// replications to succeed — the historical behaviour.
    pub quorum: Option<usize>,
    /// Worker threads for replicated evaluation ([`monte_carlo`]):
    /// `0` = all available cores, `1` = serial. Results are bitwise
    /// identical at any setting (see [`crate::replicate`]).
    pub threads: usize,
    /// Worker threads for intra-evaluation DAG scheduling
    /// ([`crate::dag`]): `0` (the default) runs the classic serial
    /// sweep/match engine; any value `>= 1` decomposes the program into
    /// SCC components and evaluates independent components concurrently.
    /// Predictions are bitwise identical at every value `>= 1`, and match
    /// the serial engine exactly whenever the program condenses to a
    /// single component (see DESIGN.md). When nested under [`monte_carlo`]
    /// the effective value is capped by the shared
    /// [`crate::replicate::ThreadBudget`].
    pub eval_threads: usize,
    /// Metrics sink. When installed the VM records sweep/match phase
    /// counts, the contention level at every message injection, scoreboard
    /// occupancy, and per-directive loss attribution into it (see the
    /// `vm.*` names in DESIGN.md). `None` (the default) costs one branch
    /// per event.
    pub metrics: Option<Arc<Registry>>,
    /// Record per-process virtual timelines ([`Prediction::timeline`]) for
    /// Chrome-trace export. Off by default: timelines allocate per
    /// directive executed.
    pub record_timeline: bool,
    /// Constant-fold expressions during lowering (the default). Folding is
    /// a pure optimisation, so disabling it must not change any prediction
    /// bit — the differential conformance harness (`pevpm-testkit`) runs
    /// fuzzed programs both ways to enforce exactly that.
    pub const_fold: bool,
    /// Sequential-stopping policy for [`monte_carlo`]. `None` (the
    /// default) runs the fixed replication count passed to `monte_carlo`
    /// — bitwise identical to the historical behaviour. `Some(policy)`
    /// runs replications in deterministic seed order until the relative
    /// Student-t CI half-width on the mean drops below
    /// [`crate::stats::AdaptivePolicy::precision`], bounded by the policy's
    /// `min_reps`/`max_reps`; the fixed `replications` argument is then
    /// ignored. The chosen replication count is itself deterministic for
    /// a given (seed, policy) — see DESIGN.md "Adaptive statistics".
    pub adaptive: Option<crate::stats::AdaptivePolicy>,
    /// Antithetic seed pairing for [`monte_carlo`] (variance reduction):
    /// replicas `2j` and `2j+1` share derived seed `base + j`, with the
    /// odd replica's Monte-Carlo probability draws mirrored (`u → 1 - u`).
    /// Negatively correlated pairs tighten the CI of the mean for
    /// monotone-ish responses at no extra evaluations. Off by default —
    /// it changes the per-replica seed stream, so fixed-reps baselines
    /// only hold with it off.
    pub antithetic: bool,
    /// Mirror every Monte-Carlo probability draw (`u → 1 - u`) in this
    /// evaluation. Set per-replica by [`monte_carlo`] to implement
    /// [`EvalConfig::antithetic`]; not useful to set directly.
    pub mirror: bool,
}

impl EvalConfig {
    /// Defaults for `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        EvalConfig {
            nprocs,
            params: Env::default(),
            seed: 1,
            rndv_threshold: 16.0 * 1024.0,
            budget: RunBudget::default(),
            quorum: None,
            threads: 0,
            eval_threads: 0,
            metrics: None,
            record_timeline: false,
            const_fold: true,
            adaptive: None,
            antithetic: false,
            mirror: false,
        }
    }

    /// Builder: bind a parameter.
    pub fn with_param(mut self, name: &str, value: f64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the replication worker-thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: set the intra-evaluation DAG worker count (`0` = serial
    /// engine, `>= 1` = DAG scheduler; see [`EvalConfig::eval_threads`]).
    pub fn with_eval_threads(mut self, eval_threads: usize) -> Self {
        self.eval_threads = eval_threads;
        self
    }

    /// Builder: install a metrics registry.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Builder: record per-process timelines.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Builder: set the evaluation budget.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder: set the replication quorum (`k` of n must succeed).
    pub fn with_quorum(mut self, k: usize) -> Self {
        self.quorum = Some(k);
        self
    }

    /// Builder: disable constant folding in the lowering pass (a
    /// differential-testing hook; see [`EvalConfig::const_fold`]).
    pub fn without_const_fold(mut self) -> Self {
        self.const_fold = false;
        self
    }

    /// Builder: enable adaptive sequential stopping for [`monte_carlo`]
    /// (see [`EvalConfig::adaptive`]).
    pub fn with_adaptive(mut self, policy: crate::stats::AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Builder: enable antithetic seed pairing for [`monte_carlo`] (see
    /// [`EvalConfig::antithetic`]).
    pub fn with_antithetic(mut self) -> Self {
        self.antithetic = true;
        self
    }
}

/// Resource limits for a single evaluation.
///
/// The defaults keep the historical safety valve (500 M directive
/// executions) and leave the time axes unlimited. Note that a *wall*-time
/// limit makes failure timing-dependent (results of successful runs stay
/// bitwise deterministic; whether a borderline run fails may vary) — use
/// the step or virtual-time axes when reproducible aborts matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBudget {
    /// Maximum directive executions per evaluation.
    pub max_steps: u64,
    /// Maximum virtual time any process clock may reach, seconds.
    pub max_virtual_secs: f64,
    /// Maximum wall-clock seconds per evaluation (checked every 64 Ki
    /// steps).
    pub max_wall_secs: f64,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_steps: 500_000_000,
            max_virtual_secs: f64::INFINITY,
            max_wall_secs: f64::INFINITY,
        }
    }
}

impl RunBudget {
    /// Builder: cap directive executions.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Builder: cap virtual time.
    pub fn with_max_virtual_secs(mut self, secs: f64) -> Self {
        self.max_virtual_secs = secs;
        self
    }

    /// Builder: cap wall-clock time.
    pub fn with_max_wall_secs(mut self, secs: f64) -> Self {
        self.max_wall_secs = secs;
        self
    }
}

/// Which [`RunBudget`] axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetAxis {
    /// `max_steps`.
    Steps,
    /// `max_virtual_secs`.
    VirtualTime,
    /// `max_wall_secs`.
    WallTime,
}

impl BudgetAxis {
    /// Human-readable axis name.
    pub fn name(self) -> &'static str {
        match self {
            BudgetAxis::Steps => "step limit",
            BudgetAxis::VirtualTime => "virtual-time limit",
            BudgetAxis::WallTime => "wall-time limit",
        }
    }
}

/// Diagnostic report attached to [`PevpmError::Budget`]: where the
/// evaluation was when the budget fired, in the same shape as the
/// deadlock report, plus the partial per-process results.
#[derive(Debug, Clone)]
pub struct BudgetReport {
    /// The exhausted axis.
    pub axis: BudgetAxis,
    /// Directive executions performed.
    pub steps: u64,
    /// Largest process clock at abort, seconds.
    pub virtual_time: f64,
    /// Wall-clock seconds elapsed in the evaluation.
    pub wall_secs: f64,
    /// Partial result: each process's virtual clock at abort.
    pub clocks: Vec<f64>,
    /// Partial result: which processes had already finished.
    pub finished: Vec<bool>,
    /// Deadlock-style diagnostic: `(procnum, description)` of every
    /// process blocked at abort (a livelocked model typically has none —
    /// that is what distinguishes it from a deadlock).
    pub blocked: Vec<(usize, String)>,
}

impl std::fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.finished.iter().filter(|&&x| x).count();
        write!(
            f,
            "evaluation budget exceeded ({}) at t={:.6}s after {} steps ({:.3}s wall): {}/{} procs finished",
            self.axis.name(),
            self.virtual_time,
            self.steps,
            self.wall_secs,
            done,
            self.finished.len()
        )?;
        for (p, d) in &self.blocked {
            write!(f, " [proc {p}: {d}]")?;
        }
        Ok(())
    }
}

/// What a [`TimelineSpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// `Serial` directive computation.
    Compute,
    /// Local (sender-side) cost of an eager send.
    Send,
    /// Blocked in a receive, rendezvous send or collective.
    Blocked,
}

impl SpanKind {
    /// Lower-case category name (Chrome-trace `cat`).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Blocked => "blocked",
        }
    }
}

/// One span of a virtual process's predicted timeline. Spans tile each
/// process's clock exactly: the durations of a process's spans sum to its
/// finish time (zero-length spans are dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSpan {
    /// What the process was doing.
    pub kind: SpanKind,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds), `>= start`.
    pub end: f64,
    /// Directive label, when the directive carried one.
    pub label: Option<String>,
}

/// The result of one PEVPM evaluation.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Number of processes evaluated.
    pub nprocs: usize,
    /// Predicted finish time of each process (seconds).
    pub finish_times: Vec<f64>,
    /// Predicted program completion time: max of the finish times.
    pub makespan: f64,
    /// Time each process spent in `Serial` computation.
    pub compute_time: Vec<f64>,
    /// Time each process spent in local send costs.
    pub send_time: Vec<f64>,
    /// Time each process spent blocked in receives / rendezvous sends /
    /// collectives.
    pub blocked_time: Vec<f64>,
    /// Total messages posted to the scoreboard.
    pub messages: u64,
    /// Blocked time attributed to directive labels (the performance-loss
    /// report).
    pub loss_by_label: HashMap<String, f64>,
    /// Potential race conditions: wildcard receives that had more than one
    /// candidate message at match time, so a different Monte-Carlo draw
    /// (or a different real-machine timing) could deliver a different
    /// message. The paper (§5) notes PEVPM "can … help programmers trace
    /// down race conditions"; each entry is `(procnum, description)`,
    /// sorted and deduplicated so reports are stable across replication
    /// orders.
    pub races: Vec<(usize, String)>,
    /// Directive executions performed by this evaluation (sweep steps).
    pub steps: u64,
    /// Peak number of in-flight messages on the contention scoreboard.
    pub sb_peak: usize,
    /// Per-process predicted timelines; non-empty only when
    /// [`EvalConfig::record_timeline`] was set. Export with
    /// [`crate::trace_export::chrome_trace`].
    pub timeline: Vec<Vec<TimelineSpan>>,
}

/// Evaluation failures.
#[derive(Debug, Clone)]
pub enum PevpmError {
    /// Expression evaluation failed.
    Expr(ExprError),
    /// No process can make progress.
    Deadlock {
        /// Virtual time of the deadlock.
        time: f64,
        /// `(procnum, description)` of every blocked process.
        blocked: Vec<(usize, String)>,
    },
    /// The timing model has no data for a queried operation.
    MissingTiming {
        /// The operation queried.
        op: Op,
        /// The message size queried.
        size: f64,
    },
    /// The model is malformed (e.g. a Send whose `from` is another rank).
    BadModel(String),
    /// The evaluation configuration is invalid (e.g. an adaptive policy
    /// with `min_reps < 2` — a one-sample CI half-width is undefined).
    Config(String),
    /// A [`RunBudget`] limit was hit; the report carries the partial
    /// results and a deadlock-style diagnostic.
    Budget(Box<BudgetReport>),
    /// A replication worker panicked ([`monte_carlo`] isolates worker
    /// panics instead of aborting the process).
    ReplicaPanic {
        /// Index of the panicking replication.
        index: usize,
        /// The panic payload.
        message: String,
    },
    /// Fewer than the required quorum of replications succeeded.
    QuorumFailed {
        /// Replications that succeeded.
        succeeded: usize,
        /// Quorum that was required.
        required: usize,
        /// Total replications attempted.
        total: usize,
        /// The lowest-index failure (what a serial loop would have hit
        /// first).
        first_failure: Box<PevpmError>,
    },
}

impl std::fmt::Display for PevpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PevpmError::Expr(e) => write!(f, "{e}"),
            PevpmError::Deadlock { time, blocked } => {
                write!(f, "deadlock at t={time:.6}s:")?;
                for (p, d) in blocked {
                    write!(f, " [proc {p}: {d}]")?;
                }
                Ok(())
            }
            PevpmError::MissingTiming { op, size } => {
                write!(f, "timing model has no data for op={op} size={size}")
            }
            PevpmError::BadModel(m) => write!(f, "bad model: {m}"),
            PevpmError::Config(m) => write!(f, "invalid configuration: {m}"),
            PevpmError::Budget(report) => write!(f, "{report}"),
            PevpmError::ReplicaPanic { index, message } => {
                write!(f, "replication {index} panicked: {message}")
            }
            PevpmError::QuorumFailed {
                succeeded,
                required,
                total,
                first_failure,
            } => write!(
                f,
                "replication quorum failed: {succeeded}/{total} succeeded, {required} required; first failure: {first_failure}"
            ),
        }
    }
}

impl std::error::Error for PevpmError {}

impl From<ExprError> for PevpmError {
    fn from(e: ExprError) -> Self {
        PevpmError::Expr(e)
    }
}

// ------------------------------------------------------------------ VM --

/// A scoreboard entry: one message in flight. Pair identity and FIFO
/// position live in the [`PairFifo`] index, not here.
#[derive(Debug, Clone)]
struct SbMsg {
    from: usize,
    size: f64,
    kind: MsgKind,
    depart: f64,
    /// The message's Monte-Carlo draw (probability coordinate). Shared by
    /// the sender-side cost and the transit-time lookup so that both land
    /// on the same mode of a multi-modal distribution.
    u: f64,
    arrival: Option<f64>,
    sender_blocked: bool,
}

/// Why a process is blocked. Labels borrow from the model (`'m`), so
/// blocking and unblocking a process never copies label strings — part of
/// the allocation-free hot-path contract.
#[derive(Debug, Clone, Copy)]
enum Block<'m> {
    /// Waiting for message `seq` from `from`; `None` = wildcard source
    /// (`from = -1` in the directive, i.e. MPI_ANY_SOURCE).
    Recv {
        from: Option<usize>,
        seq: u64,
        label: Option<Label<'m>>,
    },
    /// Blocking rendezvous send: waiting for scoreboard message `msg` to be
    /// consumed by its receiver. The slab handle stays valid however many
    /// other messages are matched and removed in the meantime.
    SendRndv {
        msg: Handle,
        label: Option<Label<'m>>,
    },
    /// Waiting at collective instance `instance`.
    Collective {
        op: CollOp,
        size: f64,
        instance: u64,
        label: Option<Label<'m>>,
    },
}

impl<'m> Block<'m> {
    fn describe(&self) -> String {
        match self {
            Block::Recv { from, seq, label } => format!(
                "Recv(from={}, seq={seq}){}",
                from.map(|f| f.to_string()).unwrap_or_else(|| "ANY".into()),
                label.map(|l| format!(" at {}", l.text)).unwrap_or_default()
            ),
            Block::SendRndv { msg, label } => format!(
                "Send[rendezvous](msg={msg}){}",
                label.map(|l| format!(" at {}", l.text)).unwrap_or_default()
            ),
            Block::Collective {
                op,
                instance,
                label,
                ..
            } => format!(
                "Collective({op:?}, instance={instance}){}",
                label.map(|l| format!(" at {}", l.text)).unwrap_or_default()
            ),
        }
    }

    fn label(&self) -> Option<Label<'m>> {
        match self {
            Block::Recv { label, .. }
            | Block::SendRndv { label, .. }
            | Block::Collective { label, .. } => *label,
        }
    }
}

/// One level of the directive interpreter's control stack.
struct Frame<'m> {
    stmts: &'m [LStmt<'m>],
    idx: usize,
    /// Remaining iterations of this block (loops re-enter; plain blocks
    /// have 1).
    remaining: u64,
    /// Loop induction variable: `(slot, total_iterations)`. The current
    /// 0-based index is `total - remaining`.
    var: Option<(u32, u64)>,
}

struct Proc<'m> {
    /// Slot-indexed variable environment (see [`crate::lower`]); `None` =
    /// unbound.
    env: Vec<Option<f64>>,
    clock: f64,
    stack: Vec<Frame<'m>>,
    blocked: Option<(Block<'m>, f64)>,
    finished: bool,
    compute_time: f64,
    send_time: f64,
    blocked_time: f64,
    coll_count: u64,
    /// Outstanding nonblocking-receive handles, indexed by interned handle
    /// slot: `(source, reserved per-pair sequence number)`.
    handles: Vec<Option<(usize, u64)>>,
}

/// Metric handles resolved once per evaluation, so the per-event cost with
/// a registry installed is a single relaxed atomic RMW (and a single
/// `Option` branch without one).
struct VmMetrics {
    sweep_phases: Arc<Counter>,
    match_phases: Arc<Counter>,
    contention: Arc<FixedHistogram>,
    occupancy: Arc<FixedHistogram>,
}

/// Bin count / range of the engine's contention histograms: contention
/// levels are scoreboard populations, integers that rarely exceed a few
/// hundred; one bin per level up to 256 (clamped above).
const CONTENTION_BINS: usize = 256;

impl VmMetrics {
    fn resolve(registry: &Registry) -> VmMetrics {
        VmMetrics {
            sweep_phases: registry.counter("vm.sweep_phases"),
            match_phases: registry.counter("vm.match_phases"),
            contention: registry.histogram(
                "vm.contention_at_injection",
                0.0,
                CONTENTION_BINS as f64,
                CONTENTION_BINS,
            ),
            occupancy: registry.histogram(
                "vm.scoreboard_occupancy",
                0.0,
                CONTENTION_BINS as f64,
                CONTENTION_BINS,
            ),
        }
    }
}

struct Vm<'m> {
    cfg: &'m EvalConfig,
    timing: &'m TimingModel,
    /// Variable-name table of the lowered model, for error messages.
    names: &'m Names,
    procs: Vec<Proc<'m>>,
    /// In-flight messages: a generational slab, so matches remove in O(1)
    /// and rendezvous senders hold stable [`Handle`]s.
    scoreboard: Slab<SbMsg>,
    /// Per (from, to) sequence counters and FIFO queues over the slab.
    fifo: PairFifo,
    rng: SmallRng,
    steps: u64,
    /// Wall-clock start of the evaluation, for the budget's wall axis.
    started: std::time::Instant,
    sb_peak: usize,
    messages: u64,
    /// Per-label loss accumulators, indexed by [`Label::slot`]; `touched`
    /// marks labels that saw at least one attributable event (so the
    /// reported map has exactly the keys the string-keyed version had).
    loss: Vec<f64>,
    loss_touched: Vec<bool>,
    races: Vec<(usize, String)>,
    metrics: Option<VmMetrics>,
    /// Per-proc predicted timelines, when `cfg.record_timeline`.
    timeline: Option<Vec<Vec<TimelineSpan>>>,
}

/// The shared evaluation prologue: parameters merged and checked, the
/// directive tree lowered, and the base variable environment built. The
/// serial engine runs it once per evaluation; the DAG scheduler
/// ([`crate::dag`]) runs it once and shares it across component runs.
pub(crate) struct EvalSetup<'m> {
    pub(crate) lowered: crate::lower::LoweredModel<'m>,
    pub(crate) base: Vec<Option<f64>>,
}

pub(crate) fn prepare<'m>(model: &'m Model, cfg: &EvalConfig) -> Result<EvalSetup<'m>, PevpmError> {
    assert!(cfg.nprocs > 0, "need at least one process");
    let mut merged = model.params.clone();
    for (k, v) in &cfg.params {
        merged.insert(k.clone(), *v);
    }
    model.check_bindings(&merged).map_err(PevpmError::from)?;

    // Compile the directive tree to slot-indexed form once; the sweep loop
    // then resolves variables by array index, not string hash.
    let lowered =
        crate::lower::lower_model_with(model, cfg.const_fold).map_err(PevpmError::from)?;
    let mut base: Vec<Option<f64>> = vec![None; lowered.names.len()];
    for (k, v) in &merged {
        if let Some(slot) = lowered.names.get(k) {
            base[slot as usize] = Some(*v);
        }
    }
    // Standard variables override same-named parameters, as in
    // `standard_env`.
    base[lowered.numprocs as usize] = Some(cfg.nprocs as f64);
    Ok(EvalSetup { lowered, base })
}

/// A message crossing a component boundary in the DAG schedule: posted by
/// a finished upstream component, consumed by a downstream one. Its
/// arrival time is already fixed (sampled in the sender's component), so
/// downstream injection is deterministic and consumes no RNG. Rendezvous
/// sends can never cross a boundary — their sender/receiver edge pair puts
/// both ends in the same SCC — so external messages are always eager.
#[derive(Debug, Clone)]
pub(crate) struct ExternalMsg {
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) size: f64,
    pub(crate) kind: MsgKind,
    pub(crate) arrival: f64,
}

/// Raw per-run results of the sweep/match engine, before race
/// deduplication and report materialisation. The serial path feeds one of
/// these straight to [`finish_prediction`]; the DAG scheduler merges one
/// per component first.
pub(crate) struct VmOutcome {
    pub(crate) clocks: Vec<f64>,
    pub(crate) compute_time: Vec<f64>,
    pub(crate) send_time: Vec<f64>,
    pub(crate) blocked_time: Vec<f64>,
    pub(crate) messages: u64,
    pub(crate) steps: u64,
    pub(crate) sb_peak: usize,
    pub(crate) races: Vec<(usize, String)>,
    pub(crate) loss: Vec<f64>,
    pub(crate) loss_touched: Vec<bool>,
    pub(crate) timeline: Option<Vec<Vec<TimelineSpan>>>,
    /// In-flight messages addressed to inactive processes at run end, in
    /// deterministic (dest, sender, FIFO) order. Always empty for
    /// unrestricted runs.
    pub(crate) external: Vec<ExternalMsg>,
}

/// Run the sweep/match engine over the prepared program. `active` limits
/// the run to a subset of processes (inactive ones start finished and are
/// never swept); `injected` preloads cross-component messages with fixed
/// arrivals. The unrestricted call — `active: None`, no injections, seed
/// `cfg.seed` — is bit-for-bit the historical serial evaluation.
pub(crate) fn run_lowered(
    setup: &EvalSetup<'_>,
    cfg: &EvalConfig,
    timing: &TimingModel,
    seed: u64,
    active: Option<&[bool]>,
    injected: &[ExternalMsg],
) -> Result<VmOutcome, PevpmError> {
    let lowered = &setup.lowered;
    let procs: Vec<Proc> = (0..cfg.nprocs)
        .map(|p| {
            if active.is_some_and(|a| !a[p]) {
                // Inactive processes never run: no environment clone, no
                // stack — they just read as finished with zero clocks.
                return Proc {
                    env: Vec::new(),
                    clock: 0.0,
                    stack: Vec::new(),
                    blocked: None,
                    finished: true,
                    compute_time: 0.0,
                    send_time: 0.0,
                    blocked_time: 0.0,
                    coll_count: 0,
                    handles: Vec::new(),
                };
            }
            let mut env = setup.base.clone();
            env[lowered.procnum as usize] = Some(p as f64);
            Proc {
                env,
                clock: 0.0,
                stack: vec![Frame {
                    stmts: &lowered.stmts,
                    idx: 0,
                    remaining: 1,
                    var: None,
                }],
                blocked: None,
                finished: lowered.stmts.is_empty(),
                compute_time: 0.0,
                send_time: 0.0,
                blocked_time: 0.0,
                coll_count: 0,
                handles: vec![None; lowered.nhandles],
            }
        })
        .collect();

    let mut vm = Vm {
        cfg,
        timing,
        names: &lowered.names,
        procs,
        scoreboard: Slab::new(),
        fifo: PairFifo::new(cfg.nprocs),
        rng: SmallRng::seed_from_u64(seed),
        steps: 0,
        started: std::time::Instant::now(),
        sb_peak: 0,
        messages: 0,
        loss: vec![0.0; lowered.labels.len()],
        loss_touched: vec![false; lowered.labels.len()],
        races: Vec::new(),
        metrics: cfg.metrics.as_deref().map(VmMetrics::resolve),
        timeline: cfg
            .record_timeline
            .then(|| (0..cfg.nprocs).map(|_| Vec::new()).collect()),
    };
    // Preload cross-component messages. Their sequence numbers come from
    // the sender-side counters, which are otherwise unused here: the
    // senders are inactive in this run.
    for m in injected {
        let seq = vm.fifo.next_send_seq(m.from, m.to);
        let h = vm.scoreboard.insert(SbMsg {
            from: m.from,
            size: m.size,
            kind: m.kind,
            depart: m.arrival,
            u: 0.0,
            arrival: Some(m.arrival),
            sender_blocked: false,
        });
        vm.fifo.enqueue(m.from, m.to, seq, h);
    }
    vm.sb_peak = vm.scoreboard.len();
    vm.run()?;

    // Collect sends left addressed to inactive processes: they cross the
    // component boundary. Arrivals not yet sampled get one at the final
    // scoreboard population, replaying the stored draw — the same rule
    // `match_phase` would apply on its next pass.
    let external = match active {
        None => Vec::new(),
        Some(active) => {
            let contention = vm.scoreboard.len() as f64;
            let mut out = Vec::new();
            for (from, to, h) in vm.fifo.in_flight() {
                if active[to] {
                    continue;
                }
                let m = vm.scoreboard.get(h).expect("in-flight handles are live");
                let arrival = match m.arrival {
                    Some(a) => a,
                    None => {
                        let op = op_for_kind(m.kind);
                        let dt = Vm::quantile_with_fallback(timing, op, m.size, contention, m.u)
                            .ok_or(PevpmError::MissingTiming { op, size: m.size })?;
                        m.depart + dt.max(0.0)
                    }
                };
                out.push(ExternalMsg {
                    from,
                    to,
                    size: m.size,
                    kind: m.kind,
                    arrival,
                });
            }
            out
        }
    };

    Ok(VmOutcome {
        clocks: vm.procs.iter().map(|p| p.clock).collect(),
        compute_time: vm.procs.iter().map(|p| p.compute_time).collect(),
        send_time: vm.procs.iter().map(|p| p.send_time).collect(),
        blocked_time: vm.procs.iter().map(|p| p.blocked_time).collect(),
        messages: vm.messages,
        steps: vm.steps,
        sb_peak: vm.sb_peak,
        races: vm.races,
        loss: vm.loss,
        loss_touched: vm.loss_touched,
        timeline: vm.timeline.take(),
        external,
    })
}

/// The shared evaluation epilogue: stable race reporting, the label-keyed
/// loss report, end-of-run registry aggregates, and the [`Prediction`].
pub(crate) fn finish_prediction(
    setup: &EvalSetup<'_>,
    cfg: &EvalConfig,
    mut outcome: VmOutcome,
) -> Prediction {
    // Stable race reporting: sorted by (proc, description) and
    // deduplicated, so the vector is identical however replications are
    // scheduled and repeated candidates collapse to one report.
    outcome.races.sort();
    outcome.races.dedup();

    let finish_times = outcome.clocks;
    let makespan = finish_times.iter().cloned().fold(0.0, f64::max);

    // Materialise the label-keyed loss report from the slot accumulators.
    let mut loss_by_label: HashMap<String, f64> = HashMap::new();
    for (i, name) in setup.lowered.labels.list().iter().enumerate() {
        if outcome.loss_touched[i] {
            loss_by_label.insert(name.clone(), outcome.loss[i]);
        }
    }

    // End-of-run aggregates go to the registry in one pass (cheap, and
    // keeps the per-event hot path down to the phase/histogram hooks).
    if let Some(registry) = &cfg.metrics {
        registry.counter("vm.evaluations").inc();
        registry.counter("vm.steps").add(outcome.steps);
        registry.counter("vm.messages").add(outcome.messages);
        registry.counter("vm.races").add(outcome.races.len() as u64);
        registry
            .histogram("vm.sb_peak", 0.0, CONTENTION_BINS as f64, CONTENTION_BINS)
            .record(outcome.sb_peak as f64);
        for (label, loss) in &loss_by_label {
            registry.gauge(&format!("vm.loss_secs.{label}")).add(*loss);
        }
    }

    Prediction {
        nprocs: cfg.nprocs,
        makespan,
        compute_time: outcome.compute_time,
        send_time: outcome.send_time,
        blocked_time: outcome.blocked_time,
        finish_times,
        messages: outcome.messages,
        loss_by_label,
        races: outcome.races,
        steps: outcome.steps,
        sb_peak: outcome.sb_peak,
        timeline: outcome.timeline.unwrap_or_default(),
    }
}

/// Evaluate a model: the public entry point of the PEVPM engine.
///
/// With [`EvalConfig::eval_threads`] `== 0` (the default) this is the
/// classic serial sweep/match evaluation; `>= 1` routes through the
/// SCC/DAG component scheduler in [`crate::dag`].
pub fn evaluate(
    model: &Model,
    cfg: &EvalConfig,
    timing: &TimingModel,
) -> Result<Prediction, PevpmError> {
    if cfg.eval_threads > 0 {
        return crate::dag::evaluate_dag(model, cfg, timing);
    }
    let setup = prepare(model, cfg)?;
    let outcome = run_lowered(&setup, cfg, timing, cfg.seed, None, &[])?;
    Ok(finish_prediction(&setup, cfg, outcome))
}

/// Aggregate of several independent Monte-Carlo evaluations.
#[derive(Debug, Clone)]
pub struct McPrediction {
    /// Mean predicted makespan over the replications.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Smallest replication makespan.
    pub min: f64,
    /// Largest replication makespan.
    pub max: f64,
    /// Welford summary of the replication makespans (mean/stderr/min/max
    /// above are read out of it).
    pub makespans: pevpm_dist::Summary,
    /// Wall-clock seconds the replication batch took.
    pub wall_secs: f64,
    /// Replication throughput (evaluations per wall-clock second).
    pub evals_per_sec: f64,
    /// How the batch spread over worker threads (replica counts, busy vs
    /// idle wall time per worker).
    pub profile: crate::replicate::ReplicateProfile,
    /// The individual replications, in seed order.
    pub runs: Vec<Prediction>,
    /// Replications that failed, as `(replication index, description)`,
    /// in index order. Non-empty only when [`EvalConfig::quorum`] allowed
    /// the batch to complete despite failures — the prediction then
    /// aggregates the surviving runs and this field is the warning.
    pub failures: Vec<(usize, String)>,
    /// What the sequential stopping rule did: replication count chosen,
    /// achieved relative half-width, convergence, and the drift verdict.
    /// `None` for fixed-reps runs ([`EvalConfig::adaptive`] unset).
    pub adaptive: Option<crate::stats::AdaptiveReport>,
}

impl McPrediction {
    /// Total directive executions swept across every replication.
    pub fn total_steps(&self) -> u64 {
        self.runs.iter().map(|p| p.steps).sum()
    }

    /// Mean directive executions per replication.
    pub fn mean_steps(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.total_steps() as f64 / self.runs.len() as f64
        }
    }

    /// Largest contention-scoreboard peak seen by any replication.
    pub fn max_sb_peak(&self) -> usize {
        self.runs.iter().map(|p| p.sb_peak).max().unwrap_or(0)
    }

    /// Histogram of the replication makespans with `bins` equal-width bins
    /// spanning the observed range.
    pub fn makespan_histogram(&self, bins: usize) -> pevpm_dist::Histogram {
        let samples: Vec<f64> = self.runs.iter().map(|p| p.makespan).collect();
        let lo = self.makespans.min().unwrap_or(0.0);
        let hi = self.makespans.max().unwrap_or(0.0);
        let width = ((hi - lo) / bins.max(1) as f64).max(f64::EPSILON * lo.abs().max(1.0));
        pevpm_dist::Histogram::from_samples(&samples, width)
    }
}

/// Evaluate a model `replications` times with consecutive seeds derived
/// from `cfg.seed` and aggregate the makespans.
///
/// §6 of the paper: "since the PEVPM execution samples from PDFs of
/// communication times, many iterations are needed to give an accurate
/// average … The PEVPM approach is like a Monte Carlo simulation of
/// performance, and the number of iterations can be chosen so that the
/// statistical error in the mean is negligibly small." For programs that
/// are not internally iterative, independent replications serve the same
/// purpose; `stderr` quantifies the remaining statistical error.
pub fn monte_carlo(
    model: &Model,
    cfg: &EvalConfig,
    timing: &TimingModel,
    replications: usize,
) -> Result<McPrediction, PevpmError> {
    if cfg.adaptive.is_some() {
        return monte_carlo_adaptive(model, cfg, timing);
    }
    assert!(replications > 0, "need at least one replication");
    let start = std::time::Instant::now();
    // Replica i is seeded from (cfg.seed, i) alone, so fanning the batch
    // across threads cannot change any replica's result; collection is in
    // index order, so the aggregate is bitwise identical to a serial loop.
    // Each replication runs panic-isolated: a worker that panics (bad
    // timing table, hostile model) is recorded as a failure, not a
    // process abort.
    // Nested parallelism shares one worker budget: the outer pool keeps
    // the requested `threads` width and each replica's DAG scheduler gets
    // the per-job share, so `threads × eval_threads` never oversubscribes
    // the host. The cap is result-neutral — DAG predictions are bitwise
    // identical at any eval-thread count >= 1.
    let budget = crate::replicate::ThreadBudget::from_host();
    let outer = budget.outer(cfg.threads, replications);
    let inner_eval = budget.inner(outer, cfg.eval_threads);
    let (outcomes, profile) =
        crate::replicate::isolated_map_profiled(replications, cfg.threads, |i| {
            evaluate(model, &replica_cfg(cfg, i, inner_eval), timing)
        });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut runs: Vec<Prediction> = Vec::with_capacity(replications);
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut first_failure: Option<PevpmError> = None;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(p) => runs.push(p),
            Err(job_err) => {
                failures.push((i, job_err.to_string()));
                if first_failure.is_none() {
                    first_failure = Some(job_error_to_pevpm(job_err, i));
                }
            }
        }
    }

    // k-of-n quorum: with `quorum: None` every replication must succeed
    // (the historical contract) and the lowest-index failure is returned —
    // exactly what a serial loop would have reported first.
    let required = cfg.quorum.unwrap_or(replications).clamp(1, replications);
    if let Some(first) = first_failure {
        if runs.len() < required {
            if cfg.quorum.is_none() {
                return Err(first);
            }
            return Err(PevpmError::QuorumFailed {
                succeeded: runs.len(),
                required,
                total: replications,
                first_failure: Box::new(first),
            });
        }
    }

    let mut makespans = pevpm_dist::Summary::new();
    for p in &runs {
        makespans.add(p.makespan);
    }
    Ok(McPrediction {
        mean: makespans.mean().unwrap_or(0.0),
        stderr: makespans.stderr_mean().unwrap_or(0.0),
        min: makespans.min().unwrap_or(0.0),
        max: makespans.max().unwrap_or(0.0),
        makespans,
        wall_secs,
        evals_per_sec: if wall_secs > 0.0 {
            replications as f64 / wall_secs
        } else {
            0.0
        },
        profile,
        runs,
        failures,
        adaptive: None,
    })
}

/// Per-replica configuration: derived seed, the per-job eval-thread
/// share, and — under [`EvalConfig::antithetic`] — the paired seed with
/// the mirror flag on odd replicas. Independent seeding is byte-for-byte
/// the historical `base + i` derivation.
fn replica_cfg(cfg: &EvalConfig, i: usize, inner_eval: usize) -> EvalConfig {
    let mut c = cfg.clone();
    if cfg.antithetic {
        c.seed = crate::replicate::replica_seed(cfg.seed, (i / 2) as u64);
        c.mirror = i % 2 == 1;
    } else {
        c.seed = crate::replicate::replica_seed(cfg.seed, i as u64);
    }
    c.eval_threads = inner_eval;
    c
}

fn job_error_to_pevpm(job_err: crate::replicate::JobError<PevpmError>, i: usize) -> PevpmError {
    match job_err {
        crate::replicate::JobError::Err(e) => e,
        crate::replicate::JobError::Panic(p) => PevpmError::ReplicaPanic {
            index: p.index.unwrap_or(i),
            message: p.message,
        },
    }
}

/// The engine's stopping test, one prefix at a time. Kept separate from
/// [`crate::stats::AdaptivePolicy::satisfied`] so the divergence drill can
/// perturb the *engine* while the conformance oracle replays the clean
/// reference rule against it.
#[cfg(not(feature = "divergence-injection"))]
fn stopping_satisfied(policy: &crate::stats::AdaptivePolicy, s: &pevpm_dist::Summary) -> bool {
    policy.satisfied(s)
}

/// Divergence drill hook (compile-time, like the DAG seed rotation): the
/// injected engine believes it has one more degree of freedom than it
/// does, which makes the half-width test too permissive — the adaptive
/// oracle must catch the resulting early stop as a divergence from the
/// reference [`crate::stats::AdaptivePolicy::stop_point`].
#[cfg(feature = "divergence-injection")]
fn stopping_satisfied(policy: &crate::stats::AdaptivePolicy, s: &pevpm_dist::Summary) -> bool {
    let (Some(mean), Some(var)) = (s.mean(), s.sample_variance()) else {
        return false;
    };
    if s.count() < 2 || mean == 0.0 {
        return false;
    }
    let hw = crate::stats::ci_half_width(s.count() + 1, var.sqrt(), policy.confidence);
    hw / mean.abs() <= policy.precision
}

/// Adaptive Monte-Carlo: run replications in deterministic seed order
/// until [`EvalConfig::adaptive`]'s precision target is met.
///
/// The stopping decision folds successful makespans over *prefixes in
/// replication-index order*: the chosen count is the first
/// `n >= min_reps` whose prefix satisfies the rule, else `max_reps`.
/// Replications are computed in chunks sized to the worker pool, and any
/// overshoot past the stopping index is discarded — so the chosen count,
/// the surviving runs, and therefore the aggregate are all invariant to
/// thread count and chunk width, and bitwise reproducible for a given
/// (seed, policy). Failed replications contribute no sample but still
/// count toward `max_reps` attempts.
fn monte_carlo_adaptive(
    model: &Model,
    cfg: &EvalConfig,
    timing: &TimingModel,
) -> Result<McPrediction, PevpmError> {
    let policy = cfg.adaptive.expect("adaptive policy checked by caller");
    policy.validate().map_err(PevpmError::Config)?;
    let start = std::time::Instant::now();
    let budget = crate::replicate::ThreadBudget::from_host();
    let outer = budget.outer(cfg.threads, policy.max_reps);
    let inner_eval = budget.inner(outer, cfg.eval_threads);

    let mut outcomes: Vec<Result<Prediction, crate::replicate::JobError<PevpmError>>> = Vec::new();
    let mut stream = pevpm_dist::Summary::new();
    let mut workers: Vec<crate::replicate::WorkerStat> = Vec::new();
    let mut attempted = 0usize;
    let mut chosen: Option<usize> = None;
    while chosen.is_none() && outcomes.len() < policy.max_reps {
        // First chunk covers the replication floor; later chunks keep the
        // pool full. Chunk width only controls how much overshoot may be
        // computed and discarded — never the stopping index.
        let want = if outcomes.is_empty() {
            policy.min_reps.max(outer)
        } else {
            outer.max(1)
        };
        let chunk = want.min(policy.max_reps - outcomes.len());
        let base_index = outcomes.len();
        let (chunk_out, chunk_profile) =
            crate::replicate::isolated_map_profiled(chunk, cfg.threads, |j| {
                evaluate(model, &replica_cfg(cfg, base_index + j, inner_eval), timing)
            });
        workers.extend(chunk_profile.workers);
        attempted += chunk;
        for out in chunk_out {
            if let Ok(p) = &out {
                stream.add(p.makespan);
            }
            outcomes.push(out);
            let n = outcomes.len();
            if n >= policy.min_reps && stopping_satisfied(&policy, &stream) {
                chosen = Some(n);
                break; // overshoot beyond the stopping index is discarded
            }
        }
    }
    let reps_run = chosen.unwrap_or(outcomes.len());
    outcomes.truncate(reps_run);
    let wall_secs = start.elapsed().as_secs_f64();

    let mut runs: Vec<Prediction> = Vec::with_capacity(reps_run);
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut first_failure: Option<PevpmError> = None;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(p) => runs.push(p),
            Err(job_err) => {
                failures.push((i, job_err.to_string()));
                if first_failure.is_none() {
                    first_failure = Some(job_error_to_pevpm(job_err, i));
                }
            }
        }
    }

    // Quorum counts the replications actually run, not the ceiling a
    // fixed-reps caller would have named: `k` of the `reps_run` attempts
    // must have succeeded (clamped so `k > reps_run` cannot make an
    // early-stopped batch unsatisfiable).
    let required = cfg.quorum.unwrap_or(reps_run).clamp(1, reps_run);
    if let Some(first) = first_failure {
        if runs.len() < required {
            if cfg.quorum.is_none() {
                return Err(first);
            }
            return Err(PevpmError::QuorumFailed {
                succeeded: runs.len(),
                required,
                total: reps_run,
                first_failure: Box::new(first),
            });
        }
    }

    let mut makespans = pevpm_dist::Summary::new();
    let mut stream_xs: Vec<f64> = Vec::with_capacity(runs.len());
    for p in &runs {
        makespans.add(p.makespan);
        stream_xs.push(p.makespan);
    }
    let report = crate::stats::AdaptiveReport {
        precision: policy.precision,
        confidence: policy.confidence,
        min_reps: policy.min_reps,
        max_reps: policy.max_reps,
        reps: reps_run,
        rel_half_width: crate::stats::rel_half_width(&makespans, policy.confidence)
            .unwrap_or(f64::INFINITY),
        converged: chosen.is_some(),
        drift: crate::stats::detect_drift(&stream_xs, crate::stats::DRIFT_ALPHA),
    };
    Ok(McPrediction {
        mean: makespans.mean().unwrap_or(0.0),
        stderr: makespans.stderr_mean().unwrap_or(0.0),
        min: makespans.min().unwrap_or(0.0),
        max: makespans.max().unwrap_or(0.0),
        makespans,
        wall_secs,
        evals_per_sec: if wall_secs > 0.0 {
            attempted as f64 / wall_secs
        } else {
            0.0
        },
        profile: crate::replicate::ReplicateProfile { workers, wall_secs },
        runs,
        failures,
        adaptive: Some(report),
    })
}

impl<'m> Vm<'m> {
    fn run(&mut self) -> Result<(), PevpmError> {
        loop {
            let advanced_sweep = self.sweep()?;
            if self.procs.iter().all(|p| p.finished) {
                return Ok(());
            }
            let advanced_match = self.match_phase()?;
            if !advanced_sweep && !advanced_match {
                let blocked = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.blocked.as_ref().map(|(b, _)| (i, b.describe())))
                    .collect();
                let time = self.procs.iter().map(|p| p.clock).fold(0.0, f64::max);
                return Err(PevpmError::Deadlock { time, blocked });
            }
        }
    }

    /// Build the structured abort report for an exhausted budget axis:
    /// partial per-process results plus the deadlock-style blocked list.
    fn budget_error(&self, axis: BudgetAxis) -> PevpmError {
        PevpmError::Budget(Box::new(BudgetReport {
            axis,
            steps: self.steps,
            virtual_time: self.procs.iter().map(|p| p.clock).fold(0.0, f64::max),
            wall_secs: self.started.elapsed().as_secs_f64(),
            clocks: self.procs.iter().map(|p| p.clock).collect(),
            finished: self.procs.iter().map(|p| p.finished).collect(),
            blocked: self
                .procs
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.blocked.as_ref().map(|(b, _)| (i, b.describe())))
                .collect(),
        }))
    }

    /// Record a timeline span for proc `p` (zero-length spans dropped, so
    /// spans tile each process's clock exactly).
    fn record_span(&mut self, p: usize, kind: SpanKind, start: f64, end: f64, label: Option<&str>) {
        if let Some(timeline) = &mut self.timeline {
            if end > start {
                timeline[p].push(TimelineSpan {
                    kind,
                    start,
                    end,
                    label: label.map(str::to_string),
                });
            }
        }
    }

    /// Run every unblocked process to its next decision point. Returns
    /// whether any process executed at least one directive.
    fn sweep(&mut self) -> Result<bool, PevpmError> {
        if let Some(m) = &self.metrics {
            m.sweep_phases.inc();
        }
        let mut advanced = false;
        for p in 0..self.procs.len() {
            while !self.procs[p].finished && self.procs[p].blocked.is_none() {
                advanced |= self.step(p)?;
                self.steps += 1;
                let budget = self.cfg.budget;
                if self.steps > budget.max_steps {
                    return Err(self.budget_error(BudgetAxis::Steps));
                }
                // A livelocked model (e.g. an unbounded loop of serial
                // work) never deadlocks — the clock axis is what stops it.
                if self.procs[p].clock > budget.max_virtual_secs {
                    return Err(self.budget_error(BudgetAxis::VirtualTime));
                }
                // The wall clock is only consulted every 64 Ki steps: an
                // Instant read per directive would dominate the hot path.
                if self.steps & 0xFFFF == 0
                    && self.started.elapsed().as_secs_f64() > budget.max_wall_secs
                {
                    return Err(self.budget_error(BudgetAxis::WallTime));
                }
            }
        }
        Ok(advanced)
    }

    /// Execute one directive (or control-flow transition) on process `p`.
    /// Returns false only when the process just finished.
    fn step(&mut self, p: usize) -> Result<bool, PevpmError> {
        // Pop exhausted frames / re-enter loops.
        loop {
            let Some(frame) = self.procs[p].stack.last_mut() else {
                self.procs[p].finished = true;
                return Ok(false);
            };
            if frame.idx < frame.stmts.len() {
                break;
            }
            if frame.remaining > 1 {
                frame.remaining -= 1;
                frame.idx = 0;
                if let Some((slot, total)) = frame.var {
                    let iter = (total - frame.remaining) as f64;
                    // Laps overwrite the binding in place: a slot store,
                    // no hashing, no allocation.
                    self.procs[p].env[slot as usize] = Some(iter);
                }
            } else {
                let popped = self.procs[p].stack.pop().unwrap();
                if let Some((slot, _)) = popped.var {
                    self.procs[p].env[slot as usize] = None;
                }
            }
        }

        let names = self.names;
        let frame = self.procs[p].stack.last_mut().unwrap();
        // Copy the `&'m [LStmt]` out of the frame so `stmt` borrows the
        // lowered model, not the frame — labels can then be threaded
        // through as `&'m str` while `self` is mutably borrowed.
        let stmts: &'m [LStmt<'m>] = frame.stmts;
        let stmt = &stmts[frame.idx];
        frame.idx += 1;

        match stmt {
            LStmt::Serial { time, label } => {
                let t = time.eval(&self.procs[p].env, names)?;
                if t < 0.0 {
                    let label = label.map(|l| l.text);
                    return Err(PevpmError::BadModel(format!(
                        "negative serial time {t} at {label:?}"
                    )));
                }
                let start = self.procs[p].clock;
                self.procs[p].clock += t;
                self.procs[p].compute_time += t;
                if self.timeline.is_some() {
                    self.record_span(
                        p,
                        SpanKind::Compute,
                        start,
                        start + t,
                        label.map(|l| l.text),
                    );
                }
            }
            LStmt::Loop { count, var, body } => {
                let n = count.eval_usize(&self.procs[p].env, names)? as u64;
                if n > 0 && !body.is_empty() {
                    if let Some(slot) = *var {
                        self.procs[p].env[slot as usize] = Some(0.0);
                    }
                    self.procs[p].stack.push(Frame {
                        stmts: body,
                        idx: 0,
                        remaining: n,
                        var: var.map(|slot| (slot, n)),
                    });
                }
            }
            LStmt::Runon { branches } => {
                for (cond, body) in branches {
                    if cond.eval_bool(&self.procs[p].env, names)? {
                        if !body.is_empty() {
                            self.procs[p].stack.push(Frame {
                                stmts: body,
                                idx: 0,
                                remaining: 1,
                                var: None,
                            });
                        }
                        break;
                    }
                }
            }
            LStmt::Wait {
                handle,
                handle_name,
                label,
            } => {
                let Some((from, seq)) = self.procs[p].handles[*handle as usize].take() else {
                    let label = label.map(|l| l.text);
                    return Err(PevpmError::BadModel(format!(
                        "proc {p}: Wait on unbound handle {handle_name:?} at {label:?}"
                    )));
                };
                let clock = self.procs[p].clock;
                self.procs[p].blocked = Some((
                    Block::Recv {
                        from: Some(from),
                        seq,
                        label: *label,
                    },
                    clock,
                ));
            }
            LStmt::Message {
                kind,
                size,
                from,
                to,
                handle,
                handle_name,
                label,
            } => {
                // `from = -1` (or any negative value) on a Recv means
                // MPI_ANY_SOURCE. `ltext` is the label as the plain
                // optional string the diagnostics print.
                let ltext = label.map(|l| l.text);
                let from_raw = from.eval(&self.procs[p].env, names)?;
                let wildcard = from_raw < -0.5 && *kind == MsgKind::Recv;
                // Reuse the evaluation above rather than walking the
                // expression again, replicating `eval_usize` validation.
                let from_v = if wildcard {
                    0
                } else if !from_raw.is_finite() || from_raw < -0.5 {
                    return Err(ExprError {
                        message: format!("expected a non-negative integer, got {from_raw}"),
                    }
                    .into());
                } else {
                    from_raw.round() as usize
                };
                let to_v = to.eval_usize(&self.procs[p].env, names)?;
                let size_v = size.eval(&self.procs[p].env, names)?;
                if (!wildcard && from_v >= self.cfg.nprocs) || to_v >= self.cfg.nprocs {
                    return Err(PevpmError::BadModel(format!(
                        "message endpoint out of range: from={from_raw} to={to_v} \
                         (numprocs={}) at {ltext:?}",
                        self.cfg.nprocs
                    )));
                }
                match kind {
                    MsgKind::Send | MsgKind::Isend => {
                        if from_v != p {
                            return Err(PevpmError::BadModel(format!(
                                "proc {p} executing a send whose from={from_v} at {ltext:?}"
                            )));
                        }
                        self.post_send(p, *kind, size_v, to_v, *label)?;
                    }
                    MsgKind::Recv => {
                        if to_v != p {
                            return Err(PevpmError::BadModel(format!(
                                "proc {p} executing a recv whose to={to_v} at {ltext:?}"
                            )));
                        }
                        let clock = self.procs[p].clock;
                        if wildcard {
                            self.procs[p].blocked = Some((
                                Block::Recv {
                                    from: None,
                                    seq: 0,
                                    label: *label,
                                },
                                clock,
                            ));
                        } else {
                            let seq = self.fifo.reserve_recv(from_v, p);
                            self.procs[p].blocked = Some((
                                Block::Recv {
                                    from: Some(from_v),
                                    seq,
                                    label: *label,
                                },
                                clock,
                            ));
                        }
                    }
                    MsgKind::Irecv => {
                        if to_v != p {
                            return Err(PevpmError::BadModel(format!(
                                "proc {p} executing an irecv whose to={to_v} at {ltext:?}"
                            )));
                        }
                        if wildcard {
                            return Err(PevpmError::BadModel(format!(
                                "wildcard MPI_Irecv is not supported at {ltext:?}"
                            )));
                        }
                        let Some(h) = handle else {
                            return Err(PevpmError::BadModel(format!(
                                "MPI_Irecv without a handle at {ltext:?}"
                            )));
                        };
                        let h = *h as usize;
                        if self.procs[p].handles[h].is_some() {
                            let h = handle_name.unwrap_or_default();
                            return Err(PevpmError::BadModel(format!(
                                "proc {p}: handle {h:?} already outstanding at {ltext:?}"
                            )));
                        }
                        // Reserve the per-pair FIFO slot now (post order),
                        // but don't block: the matching wait is a separate
                        // decision point, and anything executed in between
                        // overlaps the transfer.
                        let seq = self.fifo.reserve_recv(from_v, p);
                        self.procs[p].handles[h] = Some((from_v, seq));
                    }
                }
            }
            LStmt::Collective { op, size, label } => {
                let size_v = size.eval(&self.procs[p].env, names)?;
                let inst = self.procs[p].coll_count;
                let clock = self.procs[p].clock;
                self.procs[p].blocked = Some((
                    Block::Collective {
                        op: *op,
                        size: size_v,
                        instance: inst,
                        label: *label,
                    },
                    clock,
                ));
            }
        }
        Ok(true)
    }

    /// The next Monte-Carlo probability coordinate. Every quantile lookup
    /// in the engine draws through here so that an antithetic replica
    /// ([`EvalConfig::mirror`]) sees exactly the mirrored stream
    /// `u → 1 - u` of its paired replica — same draw count, same order.
    /// `comm_time(…, rng)` ≡ `quantile_time(…, rng.gen())`, so routing
    /// draws through this helper is bitwise neutral when not mirrored.
    fn draw_u(&mut self) -> f64 {
        let u: f64 = rand::Rng::gen(&mut self.rng);
        if self.cfg.mirror {
            1.0 - u
        } else {
            u
        }
    }

    fn post_send(
        &mut self,
        p: usize,
        kind: MsgKind,
        size: f64,
        to: usize,
        label: Option<Label<'m>>,
    ) -> Result<(), PevpmError> {
        let seq = self.fifo.next_send_seq(p, to);
        self.messages += 1;
        let rndv = kind == MsgKind::Send && size >= self.cfg.rndv_threshold;
        // One Monte-Carlo draw per message: the sender-side cost uses the
        // same probability coordinate as the transit time will at match
        // time, so correlated (e.g. intra- vs inter-node) path modes stay
        // correlated. The sender occupies its NIC for a *path-mode*
        // dependent time but not for the downstream congestion the full
        // sample includes, so the cost blends the distribution minimum
        // with the correlated quantile (calibrated weight 0.4).
        let u: f64 = self.draw_u();
        let contention = (self.scoreboard.len() + 1) as f64;
        if let Some(m) = &self.metrics {
            m.contention.record(contention);
        }
        let op = op_for_kind(kind);
        let q = Self::quantile_with_fallback(self.timing, op, size, contention, u);
        let qmin = Self::quantile_with_fallback(self.timing, op, size, contention, 0.0);
        let local = match (q, qmin) {
            (Some(q), Some(m)) => TimingModel::SENDER_SHARE * (m + 0.4 * (q - m)),
            _ => 0.0,
        };
        let depart = self.procs[p].clock;
        let msg = self.scoreboard.insert(SbMsg {
            from: p,
            size,
            kind,
            depart,
            u,
            arrival: None,
            sender_blocked: rndv,
        });
        self.fifo.enqueue(p, to, seq, msg);
        self.sb_peak = self.sb_peak.max(self.scoreboard.len());
        if rndv {
            self.procs[p].blocked = Some((Block::SendRndv { msg, label }, depart));
        } else {
            self.procs[p].clock += local;
            self.procs[p].send_time += local;
            // Send-side costs are part of the loss report too.
            if let Some(l) = label {
                self.add_loss(l, local);
            }
            if self.timeline.is_some() {
                self.record_span(
                    p,
                    SpanKind::Send,
                    depart,
                    depart + local,
                    label.map(|l| l.text),
                );
            }
        }
        Ok(())
    }

    /// Quantile lookup with the Send↔Isend fallback (benchmark databases
    /// often measure only one of the two point-to-point flavours). An
    /// associated function (not a method) so callers can hold disjoint
    /// mutable borrows of other `Vm` fields — e.g. filling arrivals through
    /// `scoreboard.iter_mut()`.
    fn quantile_with_fallback(
        timing: &TimingModel,
        op: Op,
        size: f64,
        contention: f64,
        u: f64,
    ) -> Option<f64> {
        timing.quantile_time(op, size, contention, u).or_else(|| {
            let alt = if op == Op::Send { Op::Isend } else { Op::Send };
            timing.quantile_time(alt, size, contention, u)
        })
    }

    /// Determine arrival times, match messages to receives, resolve
    /// collectives. Returns whether any process was unblocked.
    fn match_phase(&mut self) -> Result<bool, PevpmError> {
        // 1. Determine arrival times for newly posted messages at the
        //    current contention level (scoreboard population), using each
        //    message's own Monte-Carlo draw.
        let contention = self.scoreboard.len() as f64;
        if let Some(m) = &self.metrics {
            m.match_phases.inc();
            m.occupancy.record(contention);
        }
        // No RNG is consumed here — each message replays its stored draw
        // `u` — so slab iteration order cannot perturb the draw sequence.
        let timing = self.timing;
        for m in self.scoreboard.iter_mut() {
            if m.arrival.is_none() {
                let op = op_for_kind(m.kind);
                let dt = Self::quantile_with_fallback(timing, op, m.size, contention, m.u)
                    .ok_or(PevpmError::MissingTiming { op, size: m.size })?;
                m.arrival = Some(m.depart + dt.max(0.0));
            }
        }

        let mut woke = false;

        // 2. Match blocked receives in per-pair FIFO order. Wildcard
        //    receives take the FIFO-head message with the earliest arrival
        //    across all senders.
        for p in 0..self.procs.len() {
            let Some((Block::Recv { from, seq, .. }, _)) = self.procs[p].blocked.as_ref() else {
                continue;
            };
            let (from, seq) = (*from, *seq);
            let handle = match from {
                Some(from) => self.fifo.take(from, p, seq),
                None => {
                    // Wildcard: per-pair FIFO heads only, earliest arrival
                    // wins (ties broken by sender rank for determinism).
                    let mut best: Option<(f64, Handle, usize)> = None;
                    let mut candidates = 0usize;
                    for (sender, h) in self.fifo.heads(p) {
                        candidates += 1;
                        let a = self
                            .scoreboard
                            .get(h)
                            .expect("fifo handles are live")
                            .arrival
                            .expect("sampled above");
                        if best.is_none() || (a, sender) < (best.unwrap().0, best.unwrap().2) {
                            best = Some((a, h, sender));
                        }
                    }
                    if let Some((_, h, sender)) = best {
                        if candidates > 1 {
                            // Multiple in-flight messages could have
                            // matched: which one wins depends on timing —
                            // a potential race (paper §5).
                            let label = self.procs[p]
                                .blocked
                                .as_ref()
                                .and_then(|(b, _)| b.label())
                                .map(|l| l.text)
                                .unwrap_or("<unlabelled wildcard recv>")
                                .to_string();
                            self.races.push((
                                p,
                                format!(
                                    "wildcard receive at {label} had {candidates} candidate \
                                     senders (matched {sender})"
                                ),
                            ));
                        }
                        // Consume this pair's FIFO head.
                        let consumed = self.fifo.consume_head(sender, p);
                        debug_assert_eq!(consumed, Some(h));
                        Some(h)
                    } else {
                        None
                    }
                }
            };
            let Some(handle) = handle else {
                continue; // no matching message posted yet
            };
            let msg = self
                .scoreboard
                .remove(handle)
                .expect("fifo handles are live");
            let arrival = msg.arrival.expect("sampled above");
            let sender = msg.from;

            let (block, since) = self.procs[p].blocked.take().unwrap();
            let wake = self.procs[p].clock.max(arrival);
            self.account_block(p, &block, since, wake);
            self.procs[p].clock = wake;
            woke = true;

            if msg.sender_blocked {
                // Rendezvous: the sender completes when the receiver does.
                if let Some((Block::SendRndv { .. }, s_since)) = self.procs[sender].blocked {
                    let (sblock, _) = self.procs[sender].blocked.take().unwrap();
                    let swake = self.procs[sender].clock.max(wake);
                    self.account_block(sender, &sblock, s_since, swake);
                    self.procs[sender].clock = swake;
                }
            }
        }

        // 3. Resolve collectives once every process waits on the same
        //    instance.
        let all_coll = self
            .procs
            .iter()
            .all(|p| matches!(p.blocked, Some((Block::Collective { .. }, _))) && !p.finished);
        if all_coll && !self.procs.is_empty() {
            let first = match &self.procs[0].blocked {
                Some((
                    Block::Collective {
                        op, size, instance, ..
                    },
                    _,
                )) => (*op, *size, *instance),
                _ => unreachable!(),
            };
            let same = self.procs.iter().all(|p| match &p.blocked {
                Some((
                    Block::Collective {
                        op, size, instance, ..
                    },
                    _,
                )) => (*op, *size, *instance) == first,
                _ => false,
            });
            if same {
                let enter_max = self
                    .procs
                    .iter()
                    .map(|p| p.blocked.as_ref().unwrap().1)
                    .fold(0.0, f64::max);
                let contention = self.cfg.nprocs as f64;
                for p in 0..self.procs.len() {
                    let (block, since) = self.procs[p].blocked.take().unwrap();
                    let (op, size) = match &block {
                        Block::Collective { op, size, .. } => (*op, *size),
                        _ => unreachable!(),
                    };
                    let dop = op_for_coll(op);
                    let u = self.draw_u();
                    let dt = self
                        .timing
                        .quantile_time(dop, size, contention, u)
                        .ok_or(PevpmError::MissingTiming { op: dop, size })?;
                    let wake = enter_max + dt.max(0.0);
                    self.account_block(p, &block, since, wake);
                    self.procs[p].clock = self.procs[p].clock.max(wake);
                    self.procs[p].coll_count += 1;
                }
                woke = true;
            }
        }

        Ok(woke)
    }

    /// Attribute `dt` seconds of loss to `label`: an indexed add on the
    /// slot accumulator — no hashing, no allocation.
    fn add_loss(&mut self, label: Label<'m>, dt: f64) {
        let i = label.slot as usize;
        self.loss[i] += dt;
        self.loss_touched[i] = true;
    }

    fn account_block(&mut self, p: usize, block: &Block<'m>, since: f64, wake: f64) {
        let dt = (wake - since).max(0.0);
        self.procs[p].blocked_time += dt;
        if let Some(label) = block.label() {
            self.add_loss(label, dt);
        }
        if self.timeline.is_some() && dt > 0.0 {
            match block.label() {
                Some(label) => {
                    self.record_span(p, SpanKind::Blocked, since, since + dt, Some(label.text))
                }
                None => {
                    let name = block.describe();
                    self.record_span(p, SpanKind::Blocked, since, since + dt, Some(&name));
                }
            }
        }
    }
}

fn op_for_kind(kind: MsgKind) -> Op {
    match kind {
        MsgKind::Send => Op::Send,
        MsgKind::Isend => Op::Isend,
        MsgKind::Recv | MsgKind::Irecv => Op::Recv,
    }
}

fn op_for_coll(op: CollOp) -> Op {
    match op {
        CollOp::Barrier => Op::Barrier,
        CollOp::Bcast => Op::Bcast,
        CollOp::Reduce => Op::Reduce,
        CollOp::Allreduce => Op::Allreduce,
        CollOp::Alltoall => Op::Alltoall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build::*;
    use crate::model::{Model, Stmt};
    use pevpm_dist::{CommDist, DistKey, DistTable};

    /// A timing model where every p2p message takes exactly `t` seconds.
    fn fixed_timing(t: f64) -> TimingModel {
        let mut table = DistTable::new();
        for op in [Op::Send, Op::Isend] {
            for &size in &[1u64, 1 << 30] {
                table.insert(
                    DistKey {
                        op,
                        size,
                        contention: 1,
                    },
                    CommDist::Point(t),
                );
            }
        }
        TimingModel::distributions(table)
    }

    #[test]
    fn serial_only_model() {
        let m = Model::new().with_stmt(serial("2.5"));
        let p = evaluate(&m, &EvalConfig::new(4), &fixed_timing(0.0)).unwrap();
        assert_eq!(p.makespan, 2.5);
        assert!(p.finish_times.iter().all(|&t| t == 2.5));
        assert_eq!(p.compute_time[0], 2.5);
        assert_eq!(p.messages, 0);
    }

    #[test]
    fn serial_scales_with_numprocs() {
        let m = Model::new().with_stmt(serial("8.0/numprocs"));
        let p = evaluate(&m, &EvalConfig::new(8), &fixed_timing(0.0)).unwrap();
        assert_eq!(p.makespan, 1.0);
    }

    #[test]
    fn simple_send_recv_pipelines_time() {
        // proc 0 computes 1 s then sends to proc 1, which waits.
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![serial("1.0"), send("100", "0", "1")],
            "procnum == 1",
            vec![recv("100", "0", "1")],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.25)).unwrap();
        // proc 1 resumes at depart(1.0) + 0.25.
        assert!(
            (p.finish_times[1] - 1.25).abs() < 1e-12,
            "{:?}",
            p.finish_times
        );
        assert!((p.blocked_time[1] - 1.25).abs() < 1e-12);
        assert_eq!(p.messages, 1);
    }

    #[test]
    fn loop_repeats_body() {
        let m = Model::new().with_stmt(looped("10", vec![serial("0.1")]));
        let p = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.0)).unwrap();
        assert!((p.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nested_loops_multiply() {
        let m = Model::new().with_stmt(looped("3", vec![looped("4", vec![serial("1")])]));
        let p = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.0)).unwrap();
        assert!((p.makespan - 12.0).abs() < 1e-9);
    }

    #[test]
    fn runon_selects_first_matching_branch() {
        let m = Model::new().with_stmt(runon2(
            "procnum < 2",
            vec![serial("1")],
            "procnum >= 2",
            vec![serial("5")],
        ));
        let p = evaluate(&m, &EvalConfig::new(4), &fixed_timing(0.0)).unwrap();
        assert_eq!(p.finish_times, vec![1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn ping_pong_round_trip() {
        let m = Model::new().with_stmt(looped(
            "5",
            vec![runon2(
                "procnum == 0",
                vec![send("64", "0", "1"), recv("64", "1", "0")],
                "procnum == 1",
                vec![recv("64", "0", "1"), send("64", "1", "0")],
            )],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        // Each iteration costs ~2 × 0.1 s (plus tiny local send costs).
        assert!(
            p.makespan >= 0.99 && p.makespan < 1.2,
            "makespan {}",
            p.makespan
        );
    }

    #[test]
    fn deadlock_detected_on_mutual_recv() {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![recv("8", "1", "0")],
            "procnum == 1",
            vec![recv("8", "0", "1")],
        ));
        let err = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap_err();
        match err {
            PevpmError::Deadlock { blocked, .. } => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn fifo_ordering_between_pair() {
        // Two sends of different sizes; receives must match in order.
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("10", "0", "1"), send("20", "0", "1")],
            "procnum == 1",
            vec![recv("10", "0", "1"), recv("20", "0", "1")],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert_eq!(p.messages, 2);
        assert!(p.makespan > 0.0);
    }

    #[test]
    fn rendezvous_send_blocks_sender() {
        // Large blocking send: sender cannot finish before the receiver's
        // 5 s of prior computation.
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("1000000", "0", "1")],
            "procnum == 1",
            vec![serial("5"), recv("1000000", "0", "1")],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert!(
            p.finish_times[0] >= 5.0,
            "rendezvous sender finished early: {:?}",
            p.finish_times
        );
    }

    #[test]
    fn eager_send_does_not_block_sender() {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("100", "0", "1")],
            "procnum == 1",
            vec![serial("5"), recv("100", "0", "1")],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert!(
            p.finish_times[0] < 1.0,
            "eager sender blocked: {:?}",
            p.finish_times
        );
    }

    #[test]
    fn out_of_range_endpoint_is_model_error() {
        let m = Model::new().with_stmt(send("8", "procnum", "procnum+1"));
        let err = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap_err();
        assert!(matches!(err, PevpmError::BadModel(_)), "{err}");
    }

    #[test]
    fn missing_timing_is_reported() {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("8", "0", "1")],
            "procnum == 1",
            vec![recv("8", "0", "1")],
        ));
        let empty = TimingModel::distributions(DistTable::new());
        let err = evaluate(&m, &EvalConfig::new(2), &empty).unwrap_err();
        assert!(matches!(err, PevpmError::MissingTiming { .. }), "{err}");
    }

    #[test]
    fn collective_synchronises_all_procs() {
        let mut table = DistTable::new();
        table.insert(
            DistKey {
                op: Op::Barrier,
                size: 0,
                contention: 4,
            },
            CommDist::Point(0.5),
        );
        let timing = TimingModel::distributions(table);
        let m = Model::new()
            .with_stmt(serial("procnum + 1")) // staggered entry: 1..4 s
            .with_stmt(collective(CollOp::Barrier, "0"));
        let p = evaluate(&m, &EvalConfig::new(4), &timing).unwrap();
        // Everyone leaves at slowest entry (4.0) + 0.5.
        for &t in &p.finish_times {
            assert!((t - 4.5).abs() < 1e-9, "{:?}", p.finish_times);
        }
    }

    #[test]
    fn loss_attribution_by_label() {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![serial("2"), send("8", "0", "1")],
            "procnum == 1",
            vec![labelled(recv("8", "0", "1"), "halo-recv")],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        let loss = p.loss_by_label.get("halo-recv").copied().unwrap_or(0.0);
        assert!((loss - 2.1).abs() < 1e-9, "loss = {loss}");
    }

    #[test]
    fn deterministic_given_seed() {
        // A model whose timing has real spread.
        let mut table = DistTable::new();
        let h = pevpm_dist::Histogram::from_samples(
            &(0..100)
                .map(|i| 0.01 + (i as f64) * 1e-4)
                .collect::<Vec<_>>(),
            1e-4,
        );
        table.insert(
            DistKey {
                op: Op::Send,
                size: 64,
                contention: 1,
            },
            CommDist::Hist(h),
        );
        let timing = TimingModel::distributions(table);
        let m = Model::new().with_stmt(looped(
            "20",
            vec![runon2(
                "procnum == 0",
                vec![send("64", "0", "1")],
                "procnum == 1",
                vec![recv("64", "0", "1")],
            )],
        ));
        let run = |seed| {
            evaluate(&m, &EvalConfig::new(2).with_seed(seed), &timing)
                .unwrap()
                .makespan
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn loop_induction_variable_binds_in_body() {
        // sum of i for i in 0..5 as serial time: 0+1+2+3+4 = 10 (×0.1 s).
        let m = Model::new().with_stmt(looped_var("5", "i", vec![serial("0.1 * i")]));
        let p = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.0)).unwrap();
        assert!((p.makespan - 1.0).abs() < 1e-9, "makespan {}", p.makespan);
    }

    #[test]
    fn induction_variable_scopes_to_loop() {
        // After the loop, `i` must be unbound again.
        let m = Model::new()
            .with_stmt(looped_var("3", "i", vec![serial("i")]))
            .with_stmt(serial("i"));
        let err = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.0)).unwrap_err();
        assert!(matches!(err, PevpmError::Expr(_)), "{err}");
    }

    #[test]
    fn wildcard_recv_takes_earliest_arrival() {
        // Procs 1 and 2 send to proc 0 at different times; two wildcard
        // receives must complete in arrival order.
        let m = Model::new().with_stmt(Stmt::Runon {
            branches: vec![
                (
                    e("procnum == 0"),
                    vec![
                        recv("8", "0-1", "0"), // from = -1 → ANY
                        recv("8", "0-1", "0"),
                    ],
                ),
                (e("procnum == 1"), vec![serial("2"), send("8", "1", "0")]),
                (e("procnum == 2"), vec![serial("1"), send("8", "2", "0")]),
            ],
        });
        let p = evaluate(&m, &EvalConfig::new(3), &fixed_timing(0.1)).unwrap();
        // First wildcard matches proc 2's message (arrival 1.1), second
        // matches proc 1's (arrival 2.1).
        assert!(
            (p.finish_times[0] - 2.1).abs() < 1e-9,
            "{:?}",
            p.finish_times
        );
    }

    #[test]
    fn wildcard_respects_per_pair_fifo() {
        // One sender, two messages; wildcard receives must take them in
        // send order even though both have arrivals.
        let m = Model::new().with_stmt(Stmt::Runon {
            branches: vec![
                (
                    e("procnum == 0"),
                    vec![recv("8", "0-1", "0"), recv("8", "0-1", "0")],
                ),
                (
                    e("procnum == 1"),
                    vec![send("8", "1", "0"), send("8", "1", "0")],
                ),
            ],
        });
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert_eq!(p.messages, 2);
        assert!(p.makespan > 0.0);
    }

    #[test]
    fn irecv_wait_overlaps_communication_with_compute() {
        // Blocking version: recv then compute — comm and compute serialise.
        let blocking = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("64", "0", "1")],
            "procnum == 1",
            vec![recv("64", "0", "1"), serial("0.5")],
        ));
        // Overlapped version: irecv, compute, wait.
        let overlapped = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("64", "0", "1")],
            "procnum == 1",
            vec![irecv("64", "0", "1", "h"), serial("0.5"), wait("h")],
        ));
        let timing = fixed_timing(0.3);
        let tb = evaluate(&blocking, &EvalConfig::new(2), &timing)
            .unwrap()
            .makespan;
        let to = evaluate(&overlapped, &EvalConfig::new(2), &timing)
            .unwrap()
            .makespan;
        // Blocking: 0.3 + 0.5 ≈ 0.8; overlapped: max(0.3, 0.5) ≈ 0.5.
        assert!((tb - 0.8).abs() < 0.02, "blocking {tb}");
        assert!((to - 0.5).abs() < 0.02, "overlapped {to}");
    }

    #[test]
    fn irecv_respects_fifo_against_blocking_recv() {
        // Two messages; the irecv posted first reserves the first slot.
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("64", "0", "1"), send("64", "0", "1")],
            "procnum == 1",
            vec![
                irecv("64", "0", "1", "h1"),
                recv("64", "0", "1"),
                wait("h1"),
            ],
        ));
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert_eq!(p.messages, 2);
    }

    #[test]
    fn wait_on_unbound_handle_is_model_error() {
        let m = Model::new().with_stmt(wait("nope"));
        let err = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.1)).unwrap_err();
        assert!(matches!(err, PevpmError::BadModel(_)), "{err}");
    }

    #[test]
    fn duplicate_handle_is_model_error() {
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("8", "0", "1"), send("8", "0", "1")],
            "procnum == 1",
            vec![irecv("8", "0", "1", "h"), irecv("8", "0", "1", "h")],
        ));
        let err = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap_err();
        assert!(matches!(err, PevpmError::BadModel(_)), "{err}");
    }

    #[test]
    fn monte_carlo_aggregates_replications() {
        let mut table = DistTable::new();
        let samples: Vec<f64> = (0..500).map(|i| 0.01 + (i % 53) as f64 * 1e-4).collect();
        table.insert(
            DistKey {
                op: Op::Send,
                size: 64,
                contention: 1,
            },
            CommDist::Hist(pevpm_dist::Histogram::from_samples(&samples, 1e-4)),
        );
        let timing = TimingModel::distributions(table);
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("64", "0", "1")],
            "procnum == 1",
            vec![recv("64", "0", "1")],
        ));
        let mc = monte_carlo(&m, &EvalConfig::new(2).with_seed(7), &timing, 50).unwrap();
        assert_eq!(mc.runs.len(), 50);
        assert!(mc.min <= mc.mean && mc.mean <= mc.max);
        assert!(mc.stderr > 0.0, "stochastic timing must produce spread");
        assert!(mc.min < mc.max);
        // More replications shrink the standard error.
        let mc2 = monte_carlo(&m, &EvalConfig::new(2).with_seed(7), &timing, 400).unwrap();
        assert!(mc2.stderr < mc.stderr);
        // Deterministic overall.
        let mc3 = monte_carlo(&m, &EvalConfig::new(2).with_seed(7), &timing, 50).unwrap();
        assert_eq!(mc.mean, mc3.mean);
    }

    #[test]
    fn monte_carlo_with_point_timing_has_zero_spread() {
        let m = Model::new().with_stmt(serial("1.0"));
        let mc = monte_carlo(&m, &EvalConfig::new(2), &fixed_timing(0.0), 5).unwrap();
        assert_eq!(mc.stderr, 0.0);
        assert_eq!(mc.min, mc.max);
    }

    #[test]
    fn wildcard_race_is_reported() {
        // Both senders post before the receiver can match: two candidates
        // for one wildcard receive -> race report.
        let m = Model::new().with_stmt(Stmt::Runon {
            branches: vec![
                (
                    e("procnum == 0"),
                    vec![
                        serial("10"), // let both sends land first
                        labelled(recv("8", "0-1", "0"), "racy-recv"),
                        recv("8", "0-1", "0"),
                    ],
                ),
                (e("procnum != 0"), vec![send("8", "procnum", "0")]),
            ],
        });
        let p = evaluate(&m, &EvalConfig::new(3), &fixed_timing(0.1)).unwrap();
        assert!(!p.races.is_empty(), "expected a race report");
        assert_eq!(p.races[0].0, 0);
        assert!(p.races[0].1.contains("racy-recv"), "{:?}", p.races);
        assert!(p.races[0].1.contains("2 candidate"), "{:?}", p.races);
    }

    #[test]
    fn single_candidate_wildcard_is_not_a_race() {
        let m = Model::new().with_stmt(Stmt::Runon {
            branches: vec![
                (e("procnum == 0"), vec![recv("8", "0-1", "0")]),
                (e("procnum == 1"), vec![send("8", "1", "0")]),
            ],
        });
        let p = evaluate(&m, &EvalConfig::new(2), &fixed_timing(0.1)).unwrap();
        assert!(p.races.is_empty(), "{:?}", p.races);
    }

    #[test]
    fn unbound_parameter_is_rejected() {
        let m = Model::new().with_stmt(serial("mystery"));
        let err = evaluate(&m, &EvalConfig::new(1), &fixed_timing(0.0)).unwrap_err();
        assert!(matches!(err, PevpmError::Expr(_)), "{err}");
    }

    #[test]
    fn metrics_registry_records_engine_activity() {
        let registry = Arc::new(Registry::new());
        let m = Model::new().with_stmt(looped(
            "5",
            vec![runon2(
                "procnum == 0",
                vec![send("64", "0", "1")],
                "procnum == 1",
                vec![labelled(recv("64", "0", "1"), "ring-recv")],
            )],
        ));
        let cfg = EvalConfig::new(2).with_metrics(registry.clone());
        let p = evaluate(&m, &cfg, &fixed_timing(0.1)).unwrap();

        assert_eq!(registry.counter("vm.evaluations").get(), 1);
        assert_eq!(registry.counter("vm.steps").get(), p.steps);
        assert_eq!(registry.counter("vm.messages").get(), p.messages);
        assert!(registry.counter("vm.sweep_phases").get() > 0);
        assert!(registry.counter("vm.match_phases").get() > 0);
        let contention = registry.histogram("vm.contention_at_injection", 0.0, 1.0, 1);
        assert_eq!(contention.count(), p.messages, "one sample per injection");
        let occupancy = registry.histogram("vm.scoreboard_occupancy", 0.0, 1.0, 1);
        assert!(occupancy.count() > 0);
        let loss = registry.gauge("vm.loss_secs.ring-recv").get();
        let expected = p.loss_by_label.get("ring-recv").copied().unwrap();
        assert!((loss - expected).abs() < 1e-12, "loss {loss} vs {expected}");
    }

    #[test]
    fn metrics_accumulate_across_monte_carlo_replicas() {
        let registry = Arc::new(Registry::new());
        let m = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("64", "0", "1")],
            "procnum == 1",
            vec![recv("64", "0", "1")],
        ));
        let cfg = EvalConfig::new(2)
            .with_metrics(registry.clone())
            .with_threads(2);
        let mc = monte_carlo(&m, &cfg, &fixed_timing(0.1), 8).unwrap();
        assert_eq!(registry.counter("vm.evaluations").get(), 8);
        assert_eq!(registry.counter("vm.steps").get(), mc.total_steps());
        assert_eq!(mc.max_sb_peak(), 1);
        assert!((mc.mean_steps() - mc.total_steps() as f64 / 8.0).abs() < 1e-12);
        assert_eq!(mc.profile.total_jobs(), 8);
    }

    #[test]
    fn timeline_spans_tile_each_process_clock() {
        let m = Model::new().with_stmt(looped(
            "3",
            vec![runon2(
                "procnum == 0",
                vec![serial("0.5"), send("64", "0", "1")],
                "procnum == 1",
                vec![recv("64", "0", "1"), serial("0.2")],
            )],
        ));
        let p = evaluate(&m, &EvalConfig::new(2).with_timeline(), &fixed_timing(0.1)).unwrap();
        assert_eq!(p.timeline.len(), 2);
        for (proc_, spans) in p.timeline.iter().enumerate() {
            assert!(!spans.is_empty(), "proc {proc_} has no spans");
            let mut sum = 0.0;
            for s in spans {
                assert!(s.end >= s.start, "span {s:?} runs backwards");
                sum += s.end - s.start;
            }
            assert!(
                (sum - p.finish_times[proc_]).abs() < 1e-9,
                "proc {proc_}: spans sum to {sum}, finish {}",
                p.finish_times[proc_]
            );
        }
    }
}
