//! PEVPM — the Performance Evaluating Virtual Parallel Machine.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! fast, accurate performance-prediction engine for message-passing
//! programs. A parallel program is described by a small directive language
//! ([`model`]) — extracted automatically from `// PEVPM`-annotated source
//! ([`annotate`]) or built programmatically — and *evaluated* on a virtual
//! parallel machine ([`vm`]) that simulates the program's time structure:
//!
//! - per-process virtual clocks advance through `Serial` computation
//!   segments;
//! - message sends post metadata to a **contention scoreboard**;
//! - evaluation proceeds in interleaved **sweep/match** phases, with each
//!   message's end-to-end time obtained by **Monte-Carlo sampling from
//!   probability distributions** measured by MPIBench, indexed by message
//!   size and current contention level ([`timing`]).
//!
//! Sampling full distributions (rather than plugging in a ping-pong average
//! or minimum) is what lets PEVPM track real executions to within a few
//! percent even at large process counts — the paper's Figure 6 result,
//! reproduced in this workspace's `pevpm-bench` crate.
//!
//! # Quick start
//!
//! ```
//! use pevpm::model::build::*;
//! use pevpm::model::Model;
//! use pevpm::timing::TimingModel;
//! use pevpm::vm::{evaluate, EvalConfig};
//!
//! // A two-process ping-pong, 10 rounds of 1 KiB messages.
//! let model = Model::new().with_stmt(looped(
//!     "10",
//!     vec![runon2(
//!         "procnum == 0",
//!         vec![send("1024", "0", "1"), recv("1024", "1", "0")],
//!         "procnum == 1",
//!         vec![recv("1024", "0", "1"), send("1024", "1", "0")],
//!     )],
//! ));
//! // Analytic timing: 100 us latency, 12.5 MB/s Fast-Ethernet bandwidth.
//! let timing = TimingModel::hockney(100e-6, 12.5e6);
//! let prediction = evaluate(&model, &EvalConfig::new(2), &timing).unwrap();
//! assert!(prediction.makespan > 0.0);
//! ```

pub mod annotate;
pub mod dag;
pub mod expr;
pub(crate) mod lower;
pub mod model;
pub mod replicate;
pub mod scoreboard;
pub mod stats;
pub mod timing;
pub mod trace_export;
pub mod vm;

pub use annotate::{parse_annotations, AnnotateError, JACOBI_FIG5};
pub use dag::DagPlan;
pub use expr::{parse as parse_expr, Env, Expr, ExprError};
pub use model::{CollOp, Model, MsgKind, Stmt};
pub use replicate::ThreadBudget;
pub use scoreboard::{Handle, PairFifo, Slab};
pub use stats::{AdaptivePolicy, AdaptiveReport};
pub use timing::{PredictionMode, TimingModel};
pub use vm::{
    evaluate, monte_carlo, EvalConfig, McPrediction, PevpmError, Prediction, SpanKind, TimelineSpan,
};
