//! What-if study: how would the Jacobi application scale if Perseus's
//! Fast Ethernet were replaced by gigabit Ethernet or a low-latency
//! (Myrinet-class) interconnect?
//!
//! This exercises the paper's flexibility claim (§6): a PEVPM model is
//! symbolic in its machine inputs, so the *same* Jacobi model re-evaluates
//! against benchmark databases from any machine — here, MPIBench runs on
//! simulated variants of the cluster and the predictions are compared.
//!
//! The comparison uses the adaptive statistics engine end to end:
//!
//! - every arm replicates until the 95% CI on its mean makespan is
//!   within ±1% (`AdaptivePolicy`), with antithetic seed pairing to
//!   cancel symmetric sampling noise;
//! - all arms of a row share one base seed — common random numbers —
//!   so the *difference* between machines is measured on paired noise
//!   and machine-to-machine deltas are not drowned by draw-to-draw
//!   luck. The closing section quantifies what that pairing buys.
//!
//! Run with `cargo run --release --example whatif_upgrade`.

use pevpm::stats::AdaptivePolicy;
use pevpm::timing::TimingModel;
use pevpm::vm::{monte_carlo, EvalConfig, McPrediction};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{DistTable, Op, Summary};
use pevpm_mpibench::{run_p2p, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::{ClusterConfig, Placement, ProtocolConfig, WorldConfig};

fn bench_machine(cluster: ClusterConfig, nodes: usize, sizes: &[u64], seed: u64) -> DistTable {
    let world = WorldConfig {
        cluster,
        procs_per_node: 1,
        placement: Placement::Block,
        protocol: ProtocolConfig::default(),
        seed,
        virtual_deadline: None,
        record_trace: false,
    };
    let _ = nodes;
    let res = run_p2p(&P2pConfig {
        world,
        sizes: sizes.to_vec(),
        repetitions: 50,
        warmup: 5,
        sync_every: 1,
        pattern: PairPattern::Ring,
        direction: Direction::Exchange,
        clock: None,
    })
    .expect("benchmark failed");
    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    table
}

fn machine_table(machine: &str, nodes: usize, sizes: &[u64]) -> DistTable {
    let cluster = match machine {
        "fe" => ClusterConfig::perseus(nodes),
        "ge" => ClusterConfig::gigabit(nodes),
        _ => ClusterConfig::lowlatency(nodes),
    };
    bench_machine(cluster, nodes, sizes, 42 + nodes as u64)
}

/// One arm of the what-if comparison: adaptive antithetic Monte-Carlo at
/// a caller-chosen base seed (arms of a row pass the same seed — CRN).
fn arm(table: DistTable, model: &pevpm::model::Model, nodes: usize, seed: u64) -> McPrediction {
    let policy = AdaptivePolicy::new(0.01).with_min_reps(4).with_max_reps(64);
    let timing = TimingModel::distributions(table);
    let cfg = EvalConfig::new(nodes)
        .with_seed(seed)
        .with_adaptive(policy)
        .with_antithetic();
    monte_carlo(model, &cfg, &timing, policy.max_reps).expect("prediction failed")
}

fn main() {
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let sizes = [cfg.halo_bytes() / 2, cfg.halo_bytes(), cfg.halo_bytes() * 2];
    let model = jacobi::model(&cfg);
    let t_serial = cfg.iterations as f64 * cfg.serial_secs;

    println!("What-if: Jacobi speedup under alternative interconnects");
    println!("(same PEVPM model; per-machine MPIBench databases; every arm");
    println!("replicated adaptively to ±1% at 95% confidence, antithetic");
    println!("pairing on, common random numbers across the arms of a row)\n");
    println!(
        "{:<7} {:>17} {:>17} {:>17}   reps",
        "procs", "fast-ethernet", "gigabit", "low-latency"
    );

    for nodes in [2usize, 4, 8, 16, 32, 64] {
        let mut row = format!("{nodes:<7}");
        let mut reps = Vec::new();
        for machine in ["fe", "ge", "ll"] {
            let table = machine_table(machine, nodes, &sizes);
            // Same base seed for every machine: the arms draw paired
            // noise, so their speedup gap is a paired comparison.
            let mc = arm(table, &model, nodes, 7);
            let report = mc.adaptive.as_ref().expect("adaptive report");
            let half = report.rel_half_width * t_serial / mc.mean;
            row.push_str(&format!(" {:>9.2}x ±{:>4.2}", t_serial / mc.mean, half));
            reps.push(report.reps.to_string());
        }
        println!("{row}   {}", reps.join("/"));
    }

    // What does pairing buy? Measure the gigabit-vs-fast-ethernet
    // speedup *difference* at 16 nodes over a grid of base seeds, once
    // with the arms sharing each seed (CRN) and once with deliberately
    // mismatched seeds. The paired difference is the same quantity with
    // far less spread — the reason the serve daemon's batch op exposes
    // `crn: true`.
    let nodes = 16usize;
    let fe = machine_table("fe", nodes, &sizes);
    let ge = machine_table("ge", nodes, &sizes);
    let mut paired = Summary::new();
    let mut independent = Summary::new();
    for s in 0..12u64 {
        let seed = 1000 + s;
        let fe_mc = arm(fe.clone(), &model, nodes, seed);
        let ge_crn = arm(ge.clone(), &model, nodes, seed);
        let ge_own = arm(ge.clone(), &model, nodes, seed + 7000);
        paired.add(t_serial / ge_crn.mean - t_serial / fe_mc.mean);
        independent.add(t_serial / ge_own.mean - t_serial / fe_mc.mean);
    }
    let sd = |s: &Summary| s.sample_variance().unwrap_or(0.0).sqrt();
    println!(
        "\nCRN payoff at {nodes} nodes (gigabit minus fast-ethernet speedup, 12 seeds):\n\
         paired arms (shared seed):   {:+.3}x ± {:.4}\n\
         independent arms:            {:+.3}x ± {:.4}\n\
         same estimate, {:.0}x less spread — fewer replications for the same answer.",
        paired.mean().unwrap_or(0.0),
        sd(&paired),
        independent.mean().unwrap_or(0.0),
        sd(&independent),
        (sd(&independent) / sd(&paired).max(1e-12)).max(1.0),
    );

    println!(
        "\nreading: the 256^2 Jacobi saturates early on Fast Ethernet; gigabit moves the\n\
         knee out; the low-latency fabric keeps scaling because small-message software\n\
         overhead — not bandwidth — dominates the halo exchange."
    );
}
