//! What-if study: how would the Jacobi application scale if Perseus's
//! Fast Ethernet were replaced by gigabit Ethernet or a low-latency
//! (Myrinet-class) interconnect?
//!
//! This exercises the paper's flexibility claim (§6): a PEVPM model is
//! symbolic in its machine inputs, so the *same* Jacobi model re-evaluates
//! against benchmark databases from any machine — here, MPIBench runs on
//! simulated variants of the cluster and the predictions are compared.
//!
//! Run with `cargo run --release --example whatif_upgrade`.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{DistTable, Op};
use pevpm_mpibench::{run_p2p, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::{ClusterConfig, Placement, ProtocolConfig, WorldConfig};

fn bench_machine(cluster: ClusterConfig, nodes: usize, sizes: &[u64], seed: u64) -> DistTable {
    let world = WorldConfig {
        cluster,
        procs_per_node: 1,
        placement: Placement::Block,
        protocol: ProtocolConfig::default(),
        seed,
        virtual_deadline: None,
        record_trace: false,
    };
    let _ = nodes;
    let res = run_p2p(&P2pConfig {
        world,
        sizes: sizes.to_vec(),
        repetitions: 50,
        warmup: 5,
        sync_every: 1,
        pattern: PairPattern::Ring,
        direction: Direction::Exchange,
        clock: None,
    })
    .expect("benchmark failed");
    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    table
}

fn main() {
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let sizes = [cfg.halo_bytes() / 2, cfg.halo_bytes(), cfg.halo_bytes() * 2];
    let model = jacobi::model(&cfg);
    let t_serial = cfg.iterations as f64 * cfg.serial_secs;

    println!("What-if: Jacobi speedup under alternative interconnects");
    println!("(same PEVPM model; per-machine MPIBench databases)\n");
    println!(
        "{:<7} {:>14} {:>14} {:>14}",
        "procs", "fast-ethernet", "gigabit", "low-latency"
    );

    for nodes in [2usize, 4, 8, 16, 32, 64] {
        let mut row = format!("{nodes:<7}");
        for machine in ["fe", "ge", "ll"] {
            let cluster = match machine {
                "fe" => ClusterConfig::perseus(nodes),
                "ge" => ClusterConfig::gigabit(nodes),
                _ => ClusterConfig::lowlatency(nodes),
            };
            let table = bench_machine(cluster, nodes, &sizes, 42 + nodes as u64);
            let timing = TimingModel::distributions(table);
            let p = evaluate(&model, &EvalConfig::new(nodes).with_seed(7), &timing)
                .expect("prediction failed");
            row.push_str(&format!(" {:>13.2}x", t_serial / p.makespan));
        }
        println!("{row}");
    }

    println!(
        "\nreading: the 256^2 Jacobi saturates early on Fast Ethernet; gigabit moves the\n\
         knee out; the low-latency fabric keeps scaling because small-message software\n\
         overhead — not bandwidth — dominates the halo exchange."
    );
}
