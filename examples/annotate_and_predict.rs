//! Annotate-and-predict: demonstrate the PEVPM annotation workflow on a
//! program that is *not* the paper's Jacobi — a ring pipeline — including
//! deadlock detection when the annotations describe a broken program.
//!
//! Run with `cargo run --release --example annotate_and_predict`.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig, PevpmError};

const RING_SRC: &str = r#"
/* A token passed around a ring `laps` times, with per-hop work. */
// PEVPM Loop iterations = laps
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum != 0
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = tokenbytes
// PEVPM &       from = procnum
// PEVPM &       to = (procnum+1) % numprocs
// PEVPM Message type = MPI_Recv
// PEVPM &       size = tokenbytes
// PEVPM &       from = numprocs-1
// PEVPM &       to = procnum
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = tokenbytes
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
// PEVPM Serial time = workseconds
// PEVPM Message type = MPI_Send
// PEVPM &       size = tokenbytes
// PEVPM &       from = procnum
// PEVPM &       to = (procnum+1) % numprocs
// PEVPM }
// PEVPM }
"#;

/// Everyone receives before sending: a guaranteed deadlock.
const BROKEN_SRC: &str = r#"
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 64
// PEVPM &       from = (procnum+1) % numprocs
// PEVPM &       to = procnum
// PEVPM Message type = MPI_Send
// PEVPM &       size = 64
// PEVPM &       from = procnum
// PEVPM &       to = (procnum+1) % numprocs
"#;

fn main() {
    let timing = TimingModel::hockney(100e-6, 12.5e6);

    // Healthy ring: predict the token's lap time on various ring sizes.
    let model = pevpm::parse_annotations(RING_SRC).expect("ring annotations parse");
    println!("ring-pipeline model: {} directives", model.num_stmts());
    for nprocs in [2usize, 4, 8, 16] {
        let p = evaluate(
            &model,
            &EvalConfig::new(nprocs)
                .with_param("laps", 10.0)
                .with_param("tokenbytes", 4096.0)
                .with_param("workseconds", 0.002),
            &timing,
        )
        .expect("ring evaluation failed");
        println!(
            "  {nprocs:>2} procs: 10 laps predicted in {:.2} ms ({:.0} us/hop)",
            p.makespan * 1e3,
            p.makespan / 10.0 / nprocs as f64 * 1e6
        );
    }

    // Broken program: PEVPM finds the deadlock automatically (§5).
    let broken = pevpm::parse_annotations(BROKEN_SRC).expect("broken annotations parse");
    match evaluate(&broken, &EvalConfig::new(4), &timing) {
        Err(PevpmError::Deadlock { time, blocked }) => {
            println!("\ndeadlock detected at t={time:.6}s, as expected:");
            for (p, what) in blocked {
                println!("  proc {p} blocked in {what}");
            }
        }
        other => panic!("expected a deadlock report, got {other:?}"),
    }
}
