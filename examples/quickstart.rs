//! Quickstart: the full MPIBench → PEVPM pipeline in one small program.
//!
//! 1. Benchmark point-to-point communication on a simulated 8-node
//!    Perseus-like cluster with MPIBench (per-message times on the global
//!    clock → probability distributions).
//! 2. Build a PEVPM model of a ping-pong program and predict its running
//!    time by Monte-Carlo sampling from those distributions.
//! 3. Actually run the equivalent program on the simulated cluster and
//!    compare.
//!
//! Run with `cargo run --release --example quickstart`.

use pevpm::model::build::*;
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm::Model;
use pevpm_dist::{DistTable, Op};
use pevpm_mpibench::{run_p2p, P2pConfig};
use pevpm_mpisim::{World, WorldConfig};

fn main() {
    // --- 1. MPIBench: measure communication-time distributions ----------
    let rounds = 200;
    let bench = P2pConfig::perseus(8, 1, vec![512, 1024, 2048], 80, 42);
    let res = run_p2p(&bench).expect("benchmark failed");
    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    let s = &res.by_size[1]; // 1024 B
    println!(
        "MPIBench @ 8x1, 1 KiB: min {:.1}us avg {:.1}us max {:.1}us over {} messages",
        s.summary.min().unwrap() * 1e6,
        s.summary.mean().unwrap() * 1e6,
        s.summary.max().unwrap() * 1e6,
        s.samples.len()
    );

    // --- 2. PEVPM: model + predict ---------------------------------------
    let model: Model = Model::new().with_stmt(looped(
        "rounds",
        vec![runon2(
            "procnum == 0",
            vec![send("1024", "0", "1"), recv("1024", "1", "0")],
            "procnum == 1",
            vec![recv("1024", "0", "1"), send("1024", "1", "0")],
        )],
    ));
    let timing = TimingModel::distributions(table);
    let prediction = evaluate(
        &model,
        &EvalConfig::new(2).with_param("rounds", rounds as f64),
        &timing,
    )
    .expect("prediction failed");
    println!(
        "PEVPM predicts {} rounds of 1 KiB ping-pong take {:.3} ms",
        rounds,
        prediction.makespan * 1e3
    );

    // --- 3. Ground truth: run the real program ---------------------------
    let report = World::run(WorldConfig::perseus(8, 1, 42), |rank| {
        if rank.rank() > 1 {
            return; // only ranks 0 and 1 participate
        }
        for i in 0..rounds {
            if rank.rank() == 0 {
                rank.send_size(1, i, 1024);
                let _ = rank.recv(1, i);
            } else {
                let _ = rank.recv(0, i);
                rank.send_size(0, i, 1024);
            }
        }
    })
    .expect("run failed");
    let measured = report.virtual_time.as_secs_f64();
    println!("Measured execution: {:.3} ms", measured * 1e3);
    println!(
        "Prediction error: {:+.1}%",
        (prediction.makespan - measured) / measured * 100.0
    );
}
