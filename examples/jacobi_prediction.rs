//! The paper's §6 workflow end-to-end, including parsing the Figure 5
//! annotated source listing:
//!
//! 1. Extract the PEVPM model from the paper's annotated Jacobi C code.
//! 2. Benchmark the halo-exchange message sizes with MPIBench on a chosen
//!    machine shape.
//! 3. Predict the Jacobi execution time by evaluating the model.
//! 4. Run the real Jacobi program (actual f32 stencil arithmetic) on the
//!    simulated cluster, verify its numerics, and compare.
//!
//! Run with `cargo run --release --example jacobi_prediction [nodes] [ppn]`.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_bench::fig6::shape_table;
use pevpm_mpibench::MachineShape;
use pevpm_mpisim::WorldConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let ppn: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let nprocs = nodes * ppn;

    // --- 1. Model from the paper's annotated listing ---------------------
    let fig5 = pevpm::parse_annotations(pevpm::JACOBI_FIG5).expect("Figure 5 must parse");
    println!(
        "Parsed Figure 5 annotations: {} directives, free parameters {:?}",
        fig5.num_stmts(),
        fig5.free_variables()
    );

    // --- 2. MPIBench database for this machine shape ---------------------
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let halo = cfg.halo_bytes();
    let shape = MachineShape { nodes, ppn };
    println!("Benchmarking {shape} with MPIBench (halo size {halo} B)...");
    let table = shape_table(shape, &[halo / 2, halo, halo * 2], 60, 42);

    // --- 3. Predict -------------------------------------------------------
    // The Figure 5 listing's serial constant is in the paper's own unit
    // (we interpret 3.24 as milliseconds; see DESIGN.md), so evaluate the
    // parametric model with explicit bindings.
    let model = jacobi::model(&cfg);
    let timing = TimingModel::distributions(table);
    let prediction = evaluate(&model, &EvalConfig::new(nprocs).with_seed(1), &timing)
        .expect("prediction failed");
    println!(
        "PEVPM predicts {} iterations on {} procs: {:.1} ms ({:.1} us/iter)",
        cfg.iterations,
        nprocs,
        prediction.makespan * 1e3,
        prediction.makespan / cfg.iterations as f64 * 1e6
    );

    // Per-source performance-loss report (§5).
    let mut losses: Vec<(&String, &f64)> = prediction.loss_by_label.iter().collect();
    losses.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    println!("Top blocking sources (summed over all processes):");
    for (label, loss) in losses.iter().take(4) {
        println!("  {label:<18} {:.2} ms", **loss * 1e3);
    }

    // --- 4. Measure and compare ------------------------------------------
    println!("Running the real Jacobi program on the simulated cluster...");
    let run = jacobi::run_measured(WorldConfig::perseus(nodes, ppn, 42), &cfg)
        .expect("measured run failed");
    let reference = jacobi::serial_reference(cfg.xsize, cfg.iterations);
    println!(
        "Measured: {:.1} ms; checksum {:.6} (serial reference {:.6}, {} numerics)",
        run.time * 1e3,
        run.checksum,
        reference,
        if (run.checksum - reference).abs() < 1e-3 {
            "correct"
        } else {
            "WRONG"
        }
    );
    println!(
        "Prediction error: {:+.2}%",
        (prediction.makespan - run.time) / run.time * 100.0
    );
}
