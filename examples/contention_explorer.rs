//! Explore how network contention shapes communication-time
//! distributions — the phenomenon behind the paper's Figures 1–4.
//!
//! Sweeps machine shapes and message sizes, printing MPIBench
//! distributions (min / mean / p95 / max and an ASCII PDF), the
//! eager→rendezvous knee, and drop/retransmission statistics under
//! saturation.
//!
//! Run with `cargo run --release --example contention_explorer [max_nodes]`.

use pevpm_dist::Ecdf;
use pevpm_mpibench::{run_p2p, P2pConfig};

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);

    let mut nodes_list = vec![2usize];
    while *nodes_list.last().unwrap() * 2 <= max_nodes {
        let next = nodes_list.last().unwrap() * 2;
        nodes_list.push(next);
    }

    println!("per-message MPI_Isend times across the machine (HalfSplit exchange)\n");
    for &nodes in &nodes_list {
        let cfg = P2pConfig::perseus(nodes, 1, vec![1024, 16 * 1024, 64 * 1024], 30, 9);
        let res = run_p2p(&cfg).expect("benchmark failed");
        println!("== {nodes}x1 ==");
        for s in &res.by_size {
            let e = Ecdf::new(&s.samples);
            println!(
                "  {:>6} B: min {:>9.1}us  mean {:>9.1}us  p95 {:>10.1}us  max {:>11.1}us",
                s.size,
                s.summary.min().unwrap() * 1e6,
                s.summary.mean().unwrap() * 1e6,
                e.quantile(0.95).unwrap() * 1e6,
                s.summary.max().unwrap() * 1e6,
            );
        }
    }

    // A close-up of the distribution shape at high contention.
    println!("\nPDF close-up: 1 KiB messages at {max_nodes}x1:");
    let cfg = P2pConfig::perseus(max_nodes.max(4), 1, vec![1024], 80, 11);
    let res = run_p2p(&cfg).expect("benchmark failed");
    let h = res.by_size[0].histogram(24);
    let peak = h
        .pdf_series()
        .map(|(_, m)| m)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (mid, mass) in h.pdf_series() {
        if mass > 0.0 {
            let bar = "#".repeat(((mass / peak) * 40.0).round() as usize);
            println!("  {:>8.1}us {bar}", mid * 1e6);
        }
    }
}
