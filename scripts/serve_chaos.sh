#!/usr/bin/env bash
# Chaos and robustness harness for the pevpm prediction daemon.
#
# Exercises the production-hardening contract from the robustness PR:
#   1. every `client --chaos` fault mode (truncated prefix, mid-frame
#      stall, half-open disconnect, oversized frame, garbage bytes, slow
#      reader) leaves the daemon alive, panic-free, and classifying each
#      abuse into the right counter;
#   2. a deliberately stalled peer is evicted with a structured
#      `"timeout"` error within --io-timeout-ms while a concurrent
#      connection keeps getting answers throughout;
#   3. a 4x overload burst (8 concurrent heavy frames against
#      --inflight 2 --queue 0) sheds cleanly with `"overloaded"`
#      responses carrying the configured retry_after_ms hint, every
#      client gets exactly one accounted answer, and the daemon
#      recovers immediately afterwards;
#   4. responses under --conns 8 are bitwise identical to the serial
#      (--conns 1) daemon across 16 distinct concurrent requests;
#   5. SIGTERM drains gracefully: the in-flight request completes, the
#      process exits 0, and the structured log records a clean drain.
#
# Leaves BENCH_serve_robustness.json in the working directory for CI
# artifact upload.
#
# Usage: scripts/serve_chaos.sh
#   PEVPM=path/to/pevpm overrides the binary (default: target/release/pevpm,
#   built on demand).
set -euo pipefail

PEVPM=${PEVPM:-target/release/pevpm}
if [ ! -x "$PEVPM" ]; then
    echo "serve_chaos: building $PEVPM"
    cargo build --release -p pevpm-cli
fi

WORK=$(mktemp -d)
DPID=
cleanup() {
    [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve_chaos: benchmarking a 2-node table"
"$PEVPM" bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --out "$WORK/db.dist" -q

cat > "$WORK/model.c" <<'EOF'
/* Two-rank ping-pong: rank 0 sends, rank 1 receives, `rounds` times. */
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
EOF

# Shared framing helpers for the raw-socket phases: the length-prefixed
# JSON protocol (4-byte big-endian length + UTF-8 body) spoken directly,
# so the harness can misbehave in ways the real client refuses to.
cat > "$WORK/fr.py" <<'EOF'
import json
import socket
import struct


def connect(addr, timeout=60.0):
    host, port = addr.rsplit(":", 1)
    s = socket.create_connection((host, int(port)), timeout=timeout)
    s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return s


def send_frame(s, body):
    data = body.encode() if isinstance(body, str) else body
    s.sendall(struct.pack(">I", len(data)) + data)


def recv_exact(s, n):
    buf = b""
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def recv_frame(s):
    hdr = recv_exact(s, 4)
    if hdr is None:
        return None
    (n,) = struct.unpack(">I", hdr)
    return recv_exact(s, n)


def predict(model, rid, rounds, seed, reps=2):
    return json.dumps({
        "op": "predict", "id": rid, "model": model, "table": "default",
        "procs": 2, "params": {"rounds": rounds}, "seed": seed, "reps": reps,
    })


def batch(model, rid, items, rounds=400, seed=7, reps=2):
    body = {
        "model": model, "table": "default", "procs": 2,
        "params": {"rounds": rounds}, "seed": seed, "reps": reps,
    }
    return json.dumps({"op": "batch", "id": rid, "requests": [body] * items})
EOF

start_daemon() {
    # start_daemon PORT_FILE STDERR_FILE [serve flags...]
    local pf=$1 errf=$2
    shift 2
    "$PEVPM" serve --db "$WORK/db.dist" --port-file "$pf" -q "$@" 2> "$errf" &
    DPID=$!
    for _ in $(seq 1 200); do
        [ -s "$pf" ] && break
        sleep 0.05
    done
    [ -s "$pf" ] || { echo "serve_chaos: daemon never wrote $pf"; exit 1; }
}

stop_daemon() {
    "$PEVPM" client --addr "$1" --shutdown > /dev/null
    wait "$DPID"
    DPID=
}

no_panics() {
    if grep -q "panicked at" "$1"; then
        echo "serve_chaos: daemon panicked (see below)"
        cat "$1"
        exit 1
    fi
}

# --- Phase 1: the chaos sweep -------------------------------------------
IO_TIMEOUT=600
echo "serve_chaos: phase 1 — client --chaos all (io-timeout ${IO_TIMEOUT}ms)"
start_daemon "$WORK/p1" "$WORK/p1.err" --conns 4 --io-timeout-ms "$IO_TIMEOUT"
ADDR1=$(sed -n 1p "$WORK/p1")
"$PEVPM" client --addr "$ADDR1" --chaos all --io-timeout-ms "$IO_TIMEOUT" \
    > "$WORK/chaos.jsonl"
"$PEVPM" client --addr "$ADDR1" --stats > "$WORK/chaos_stats.json"
stop_daemon "$ADDR1"
no_panics "$WORK/p1.err"

python3 - "$WORK/chaos.jsonl" "$WORK/chaos_stats.json" <<'PY'
import json, sys
reports = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(reports) == 6, f"expected 6 chaos reports, got {len(reports)}"
by_mode = {r["mode"]: r for r in reports}
for r in reports:
    assert r["survived"], f"daemon did not survive chaos mode {r['mode']}: {r}"
assert by_mode["stalled-write"]["outcome"] == "error-frame:timeout", by_mode
assert by_mode["oversized"]["outcome"] == "error-frame:usage", by_mode
assert by_mode["garbage"]["outcome"] == "error-frame:usage", by_mode
assert by_mode["slow-read"]["outcome"] == "frame:ok", by_mode
stats = json.load(open(sys.argv[2]))
counters = stats["result"]["counters"]
assert counters.get("serve.panics_isolated", 0) == 0, counters
assert counters.get("serve.conn.truncated", 0) >= 1, counters
assert counters.get("serve.conn.io_timeouts", 0) >= 1, counters
assert counters.get("serve.conn.bad_frames", 0) >= 2, counters
print("serve_chaos: 6/6 modes survived, abuse classified into the right counters")
PY

# --- Phase 2: stalled peer evicted while a neighbour is served ----------
EVICT_TIMEOUT=500
echo "serve_chaos: phase 2 — slowloris eviction at --io-timeout-ms ${EVICT_TIMEOUT}"
start_daemon "$WORK/p2" "$WORK/p2.err" --conns 2 --io-timeout-ms "$EVICT_TIMEOUT"
ADDR2=$(sed -n 1p "$WORK/p2")
python3 - "$ADDR2" "$EVICT_TIMEOUT" "$WORK/evict.json" "$WORK" <<'PY'
import json, socket, struct, sys, threading, time
sys.path.insert(0, sys.argv[4])
import fr

addr, timeout_ms, out = sys.argv[1], int(sys.argv[2]), sys.argv[3]

# Connection A: announce a 64-byte frame, deliver 10 bytes, go silent.
stalled = fr.connect(addr)
stalled.sendall(struct.pack(">I", 64) + b'{"op":"pi')
t0 = time.monotonic()

# Connection B: keep pinging the whole time the stall is pending.
pings_ok = []
done = threading.Event()
def pinger():
    neighbour = fr.connect(addr)
    i = 0
    while not done.is_set():
        fr.send_frame(neighbour, json.dumps({"op": "ping", "id": f"n{i}"}))
        resp = fr.recv_frame(neighbour)
        pings_ok.append(resp is not None and b'"ok":true' in resp)
        i += 1
        time.sleep(0.05)
    neighbour.close()
t = threading.Thread(target=pinger)
t.start()

# The stalled peer must receive a structured "timeout" error frame and
# then the connection must close — well before timeout + margin.
stalled.settimeout((timeout_ms + 2500) / 1e3)
frame = fr.recv_frame(stalled)
evicted_ms = (time.monotonic() - t0) * 1e3
assert frame is not None, "stalled connection closed without a timeout frame"
resp = json.loads(frame)
assert resp.get("code") == "timeout", resp
assert fr.recv_frame(stalled) is None, "socket not closed after the timeout frame"
assert evicted_ms <= timeout_ms + 2000, f"eviction took {evicted_ms:.0f} ms"

time.sleep(0.15)  # a few more pings after the eviction
done.set()
t.join()
assert len(pings_ok) >= 3 and all(pings_ok), \
    f"neighbour starved during the stall: {len(pings_ok)} pings, all_ok={all(pings_ok)}"
json.dump({"io_timeout_ms": timeout_ms, "evicted_ms": round(evicted_ms, 1),
           "neighbour_pings_ok": len(pings_ok)}, open(out, "w"))
print(f"serve_chaos: stalled peer evicted in {evicted_ms:.0f} ms, "
      f"{len(pings_ok)} neighbour pings all ok")
PY
"$PEVPM" client --addr "$ADDR2" --stats > "$WORK/evict_stats.json"
stop_daemon "$ADDR2"
no_panics "$WORK/p2.err"
python3 - "$WORK/evict_stats.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["result"]["counters"]
assert counters.get("serve.conn.io_timeouts", 0) == 1, counters
print("serve_chaos: exactly one serve.conn.io_timeouts recorded")
PY

# --- Phase 3: 4x overload burst sheds cleanly ---------------------------
SHED_RETRY=25
echo "serve_chaos: phase 3 — 4x overload burst (8 clients vs --inflight 2 --queue 0)"
start_daemon "$WORK/p3" "$WORK/p3.err" --conns 8 --inflight 2 --queue 0 \
    --shed-retry-ms "$SHED_RETRY" --io-timeout-ms 60000
ADDR3=$(sed -n 1p "$WORK/p3")
python3 - "$ADDR3" "$WORK/model.c" "$SHED_RETRY" "$WORK/burst.json" "$WORK" <<'PY'
import json, sys, threading, time
sys.path.insert(0, sys.argv[5])
import fr

addr, shed_retry, out = sys.argv[1], int(sys.argv[3]), sys.argv[4]
model = open(sys.argv[2]).read()

# 8 concurrent heavy batch frames against an in-flight capacity of 2
# with no wait queue: a 4x burst. Each client gets exactly one answer —
# either the full batch result or an immediate "overloaded" shed.
N = 8
socks = [fr.connect(addr) for _ in range(N)]
results = [None] * N
t0 = time.monotonic()
def run(i):
    fr.send_frame(socks[i], fr.batch(model, f"burst-{i}", items=192))
    results[i] = fr.recv_frame(socks[i])
threads = [threading.Thread(target=run, args=(i,)) for i in range(N)]
for t in threads:
    t.start()
for t in threads:
    t.join()
elapsed_ms = (time.monotonic() - t0) * 1e3
for s in socks:
    s.close()

ok = shed = 0
hints = []
for i, raw in enumerate(results):
    assert raw is not None, f"burst client {i} got no response"
    resp = json.loads(raw)
    if resp.get("ok"):
        assert len(resp["result"]) == 192, f"burst client {i} short batch"
        ok += 1
    else:
        assert resp.get("code") == "overloaded", resp
        hints.append(resp.get("retry_after_ms"))
        shed += 1
assert ok + shed == N, (ok, shed)
assert ok >= 1, "no burst client was ever admitted"
assert shed >= 1, "a 4x overload burst must shed at least one client"
assert all(h == shed_retry for h in hints), \
    f"retry_after_ms hints {hints} != --shed-retry-ms {shed_retry}"

# The daemon recovers the moment the burst drains: a fresh small request
# is admitted without shedding.
probe = fr.connect(addr)
fr.send_frame(probe, fr.predict(model, "post-burst", rounds=50, seed=3))
resp = json.loads(fr.recv_frame(probe))
probe.close()
assert resp.get("ok"), f"daemon did not recover after the burst: {resp}"

json.dump({"clients": N, "inflight": 2, "queue": 0, "ok": ok, "shed": shed,
           "retry_after_ms": shed_retry, "elapsed_ms": round(elapsed_ms, 1),
           "recovered_after_burst": True}, open(out, "w"))
print(f"serve_chaos: burst of {N}: {ok} served, {shed} shed with "
      f"retry_after_ms={shed_retry}, recovered after {elapsed_ms:.0f} ms")
PY
"$PEVPM" client --addr "$ADDR3" --stats > "$WORK/burst_stats.json"
stop_daemon "$ADDR3"
no_panics "$WORK/p3.err"

python3 - "$WORK/burst_stats.json" "$WORK/burst.json" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
burst = json.load(open(sys.argv[2]))
counters = stats["result"]["counters"]
assert counters.get("serve.shed.total", 0) >= burst["shed"], (counters, burst)
assert counters.get("serve.panics_isolated", 0) == 0, counters
hists = stats["result"].get("histograms", {})
assert "serve.queue_wait_ms" in hists, sorted(hists)
print(f"serve_chaos: serve.shed.total={counters['serve.shed.total']:.0f}, "
      "queue-wait histogram populated")
PY

# --- Phase 4: --conns 8 is bitwise identical to the serial daemon -------
echo "serve_chaos: phase 4 — determinism, serial vs --conns 8 (16 distinct requests)"
start_daemon "$WORK/p4a" "$WORK/p4a.err" --conns 1
ADDR4A=$(sed -n 1p "$WORK/p4a")
python3 - "$ADDR4A" "$WORK/model.c" serial "$WORK/serial.json" "$WORK" <<'PY'
import json, sys, threading
sys.path.insert(0, sys.argv[5])
import fr

addr, mode, out = sys.argv[1], sys.argv[3], sys.argv[4]
model = open(sys.argv[2]).read()
frames = [fr.predict(model, f"det-{i}", rounds=30 + i, seed=100 + i)
          for i in range(16)]

if mode == "serial":
    # One connection, requests in order.
    s = fr.connect(addr)
    got = []
    for f in frames:
        fr.send_frame(s, f)
        got.append(fr.recv_frame(s))
    s.close()
else:
    # 16 connections racing through the worker pool.
    got = [None] * len(frames)
    def run(i):
        s = fr.connect(addr)
        fr.send_frame(s, frames[i])
        got[i] = fr.recv_frame(s)
        s.close()
    threads = [threading.Thread(target=run, args=(i,)) for i in range(len(frames))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

assert all(g is not None for g in got), "a determinism request got no response"
json.dump([g.hex() for g in got], open(out, "w"))
print(f"serve_chaos: {mode}: {len(got)} responses captured")
PY
stop_daemon "$ADDR4A"
no_panics "$WORK/p4a.err"

start_daemon "$WORK/p4b" "$WORK/p4b.err" --conns 8
ADDR4B=$(sed -n 1p "$WORK/p4b")
python3 - "$ADDR4B" "$WORK/model.c" concurrent "$WORK/concurrent.json" "$WORK" <<'PY'
import json, sys, threading
sys.path.insert(0, sys.argv[5])
import fr

addr, mode, out = sys.argv[1], sys.argv[3], sys.argv[4]
model = open(sys.argv[2]).read()
frames = [fr.predict(model, f"det-{i}", rounds=30 + i, seed=100 + i)
          for i in range(16)]

if mode == "serial":
    s = fr.connect(addr)
    got = []
    for f in frames:
        fr.send_frame(s, f)
        got.append(fr.recv_frame(s))
    s.close()
else:
    got = [None] * len(frames)
    def run(i):
        s = fr.connect(addr)
        fr.send_frame(s, frames[i])
        got[i] = fr.recv_frame(s)
        s.close()
    threads = [threading.Thread(target=run, args=(i,)) for i in range(len(frames))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

assert all(g is not None for g in got), "a determinism request got no response"
json.dump([g.hex() for g in got], open(out, "w"))
print(f"serve_chaos: {mode}: {len(got)} responses captured")
PY
stop_daemon "$ADDR4B"
no_panics "$WORK/p4b.err"

python3 - "$WORK/serial.json" "$WORK/concurrent.json" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1]))
concurrent = json.load(open(sys.argv[2]))
assert len(serial) == len(concurrent) == 16
for i, (a, b) in enumerate(zip(serial, concurrent)):
    assert a == b, f"request det-{i} diverged between --conns 1 and --conns 8"
print("serve_chaos: 16/16 responses bitwise identical, serial vs --conns 8")
PY

# --- Phase 5: SIGTERM drains the in-flight request ----------------------
echo "serve_chaos: phase 5 — SIGTERM graceful drain"
"$PEVPM" serve --db "$WORK/db.dist" --port-file "$WORK/p5" -q \
    --conns 2 --drain-ms 20000 --http 127.0.0.1:0 \
    --log-out "$WORK/drain.log" 2> "$WORK/p5.err" &
DPID=$!
for _ in $(seq 1 200); do
    [ -s "$WORK/p5" ] && break
    sleep 0.05
done
[ -s "$WORK/p5" ] || { echo "serve_chaos: drain daemon never wrote its port file"; exit 1; }
ADDR5=$(sed -n 1p "$WORK/p5")
HTTP5=$(sed -n 2p "$WORK/p5")

python3 - "$ADDR5" "$WORK/model.c" "$WORK/drain_resp.json" "$WORK" <<'PY' &
import json, sys
sys.path.insert(0, sys.argv[4])
import fr

addr, out = sys.argv[1], sys.argv[3]
model = open(sys.argv[2]).read()
s = fr.connect(addr, timeout=120.0)
fr.send_frame(s, fr.batch(model, "drain-me", items=256))
resp = json.loads(fr.recv_frame(s))
json.dump({"ok": bool(resp.get("ok")), "items": len(resp.get("result", []))},
          open(out, "w"))
PY
CLIENT_PID=$!

# Wait until the batch is actually in flight (sidecar gauge), then TERM.
python3 - "$HTTP5" <<'PY'
import sys, time, urllib.request
addr = sys.argv[1]
for _ in range(400):
    with urllib.request.urlopen(f"http://{addr}/metrics", timeout=10) as r:
        text = r.read().decode()
    for line in text.splitlines():
        if line.startswith("serve_inflight ") and float(line.split()[1]) >= 1:
            sys.exit(0)
    time.sleep(0.025)
sys.exit("serve_chaos: batch never showed up in the serve_inflight gauge")
PY

kill -TERM "$DPID"
wait "$DPID"
DPID=
wait "$CLIENT_PID"
no_panics "$WORK/p5.err"

python3 - "$WORK/drain_resp.json" "$WORK/drain.log" "$WORK/drain.json" <<'PY'
import json, sys
resp = json.load(open(sys.argv[1]))
assert resp["ok"] and resp["items"] == 256, \
    f"in-flight batch did not complete across the drain: {resp}"
spans = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
drains = [s for s in spans if s["op"] == "drain"]
assert drains, "no drain span in the structured log"
assert drains[-1]["outcome"] == "clean", drains[-1]
json.dump({"signal": "SIGTERM", "exit_code": 0, "in_flight_completed": True,
           "outcome": drains[-1]["outcome"]}, open(sys.argv[3], "w"))
print("serve_chaos: SIGTERM drained cleanly, in-flight batch of 256 completed, exit 0")
PY

# --- Assemble the benchmark artifact ------------------------------------
python3 - "$WORK" <<'PY'
import json, sys
w = sys.argv[1]
chaos = [json.loads(l) for l in open(f"{w}/chaos.jsonl") if l.strip()]
burst = json.load(open(f"{w}/burst.json"))
counters = json.load(open(f"{w}/burst_stats.json"))["result"]["counters"]
burst["shed_total_counter"] = counters.get("serve.shed.total", 0)
report = {
    "chaos": chaos,
    "eviction": json.load(open(f"{w}/evict.json")),
    "burst": burst,
    "determinism": {"requests": 16, "conns": 8, "bitwise_identical": True},
    "drain": json.load(open(f"{w}/drain.json")),
}
json.dump(report, open("BENCH_serve_robustness.json", "w"), indent=1)
print("serve_chaos: BENCH_serve_robustness.json written")
PY

echo "serve_chaos: ok"
