#!/usr/bin/env bash
# End-to-end smoke test of the pevpm prediction daemon (`pevpm serve`).
#
# Exercises the acceptance contract from the serve PR:
#   1. a batch of 100 identical requests compiles the model and the
#      benchmark table exactly once (cache counters are golden);
#   2. every batched answer is byte-identical to the lone daemon answer,
#      and the daemon's deterministic report prefixes the one-shot
#      `pevpm predict` output for the same request;
#   3. the daemon batch beats 100 one-shot CLI invocations by >= 5x;
#   4. `--metrics-out` lands the server registry on disk at shutdown.
#
# Usage: scripts/serve_smoke.sh
#   PEVPM=path/to/pevpm overrides the binary (default: target/release/pevpm,
#   built on demand). Leaves serve-metrics.json in the working directory
#   for CI artifact upload.
set -euo pipefail

PEVPM=${PEVPM:-target/release/pevpm}
if [ ! -x "$PEVPM" ]; then
    echo "serve_smoke: building $PEVPM"
    cargo build --release -p pevpm-cli
fi

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve_smoke: benchmarking a 2-node table"
"$PEVPM" bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --out "$WORK/db.dist" -q

cat > "$WORK/model.c" <<'EOF'
/* Two-rank ping-pong: rank 0 sends, rank 1 receives, `rounds` times. */
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
EOF

echo "serve_smoke: starting the daemon"
"$PEVPM" serve --db "$WORK/db.dist" --port-file "$WORK/port" \
    --metrics-out "$WORK/metrics.json" -q &
SERVE_PID=$!
for _ in $(seq 1 200); do
    [ -s "$WORK/port" ] && break
    sleep 0.05
done
[ -s "$WORK/port" ] || { echo "serve_smoke: daemon never wrote its port file"; exit 1; }
echo "serve_smoke: daemon is up on $(cat "$WORK/port")"

FLAGS=(--model "$WORK/model.c" --procs 2 --param rounds=50 --reps 4 --seed 3)

"$PEVPM" client --port-file "$WORK/port" "${FLAGS[@]}" > "$WORK/lone.json"

echo "serve_smoke: timing a batch of 100 identical requests"
batch_start=$(date +%s.%N)
"$PEVPM" client --port-file "$WORK/port" "${FLAGS[@]}" --batch 100 > "$WORK/batch.json"
batch_end=$(date +%s.%N)

python3 - "$WORK/lone.json" "$WORK/batch.json" <<'PY'
import json, sys
lone = json.load(open(sys.argv[1]))
batch = json.load(open(sys.argv[2]))
assert lone["ok"], lone
assert batch["ok"], batch
items = batch["result"]
assert len(items) == 100, f"expected 100 batch answers, got {len(items)}"
for i, item in enumerate(items):
    assert item["ok"], (i, item)
    assert item["result"] == lone["result"], f"batch item {i} diverged from the lone answer"
print("serve_smoke: 100/100 batched answers identical to the lone answer")
PY

"$PEVPM" client --port-file "$WORK/port" --stats > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["ok"], stats
counters = stats["result"]["counters"]
assert counters["serve.model_compiles"] == 1, counters
assert counters["serve.table_compiles"] == 1, counters
assert counters["serve.model_cache_hits"] >= 100, counters
print("serve_smoke: 101 predictions, exactly 1 model parse and 1 table compile")
PY

echo "serve_smoke: timing 100 one-shot CLI predictions"
oneshot_start=$(date +%s.%N)
for _ in $(seq 1 100); do
    "$PEVPM" predict --db "$WORK/db.dist" "${FLAGS[@]}" -q > "$WORK/oneshot.txt"
done
oneshot_end=$(date +%s.%N)

python3 - "$WORK/lone.json" "$WORK/oneshot.txt" \
    "$batch_start" "$batch_end" "$oneshot_start" "$oneshot_end" <<'PY'
import json, sys
lone = json.load(open(sys.argv[1]))
oneshot = open(sys.argv[2]).read()
report = lone["result"]["report"]
assert oneshot.startswith(report), (
    f"daemon report is not a prefix of the one-shot output:\n{report!r}\nvs\n{oneshot!r}")
batch = float(sys.argv[4]) - float(sys.argv[3])
loop = float(sys.argv[6]) - float(sys.argv[5])
ratio = loop / batch if batch > 0 else float("inf")
print(f"serve_smoke: daemon batch {batch:.3f}s vs one-shot loop {loop:.3f}s ({ratio:.1f}x)")
assert ratio >= 5.0, f"daemon must beat 100 one-shot invocations by >= 5x, got {ratio:.1f}x"
PY

"$PEVPM" client --port-file "$WORK/port" --shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=

python3 - "$WORK/metrics.json" <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
counters = metrics["counters"]
for key in ("serve.requests", "serve.model_compiles", "serve.table_compiles",
            "serve.model_cache_hits"):
    assert key in counters, f"{key} missing from --metrics-out dump"
assert counters["serve.model_compiles"] == 1, counters
assert counters["serve.table_compiles"] == 1, counters
print("serve_smoke: --metrics-out golden counters present")
PY

cp "$WORK/metrics.json" serve-metrics.json
echo "serve_smoke: ok"
