#!/usr/bin/env bash
# End-to-end smoke test of the pevpm prediction daemon (`pevpm serve`).
#
# Exercises the acceptance contract from the serve PR:
#   1. a batch of 100 identical requests compiles the model and the
#      benchmark table exactly once (cache counters are golden);
#   2. every batched answer is byte-identical to the lone daemon answer,
#      and the daemon's deterministic report prefixes the one-shot
#      `pevpm predict` output for the same request;
#   3. the daemon batch beats 100 one-shot CLI invocations by >= 5x;
#   4. `--metrics-out` lands the server registry on disk at shutdown;
#   5. the HTTP observability sidecar answers /metrics (Prometheus text
#      whose serve_requests_total and per-stage histogram _counts equal
#      the 101 predictions served), /healthz, and /spans, and the
#      structured request log has one JSON line per request;
#   6. an adaptive request (--precision) converges before its rep
#      ceiling, reports reps saved, and feeds the serve.reps.saved
#      counter.
#
# Usage: scripts/serve_smoke.sh
#   PEVPM=path/to/pevpm overrides the binary (default: target/release/pevpm,
#   built on demand). Leaves serve-metrics.json and serve-spans.json in the
#   working directory for CI artifact upload.
set -euo pipefail

PEVPM=${PEVPM:-target/release/pevpm}
if [ ! -x "$PEVPM" ]; then
    echo "serve_smoke: building $PEVPM"
    cargo build --release -p pevpm-cli
fi

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "serve_smoke: benchmarking a 2-node table"
"$PEVPM" bench --nodes 2 --sizes 1024 --reps 20 --seed 5 --out "$WORK/db.dist" -q

cat > "$WORK/model.c" <<'EOF'
/* Two-rank ping-pong: rank 0 sends, rank 1 receives, `rounds` times. */
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
EOF

echo "serve_smoke: starting the daemon (with observability sidecar)"
"$PEVPM" serve --db "$WORK/db.dist" --port-file "$WORK/port" \
    --metrics-out "$WORK/metrics.json" --conns 4 \
    --http 127.0.0.1:0 --log-out "$WORK/requests.log" -q &
SERVE_PID=$!
for _ in $(seq 1 200); do
    [ -s "$WORK/port" ] && break
    sleep 0.05
done
[ -s "$WORK/port" ] || { echo "serve_smoke: daemon never wrote its port file"; exit 1; }
HTTP_ADDR=$(sed -n 2p "$WORK/port")
[ -n "$HTTP_ADDR" ] || { echo "serve_smoke: port file is missing the sidecar address"; exit 1; }
echo "serve_smoke: daemon is up on $(sed -n 1p "$WORK/port"), sidecar on $HTTP_ADDR"

FLAGS=(--model "$WORK/model.c" --procs 2 --param rounds=50 --reps 4 --seed 3)

"$PEVPM" client --port-file "$WORK/port" "${FLAGS[@]}" > "$WORK/lone.json"

echo "serve_smoke: timing a batch of 100 identical requests"
batch_start=$(date +%s.%N)
"$PEVPM" client --port-file "$WORK/port" "${FLAGS[@]}" --batch 100 > "$WORK/batch.json"
batch_end=$(date +%s.%N)

python3 - "$WORK/lone.json" "$WORK/batch.json" <<'PY'
import json, sys
lone = json.load(open(sys.argv[1]))
batch = json.load(open(sys.argv[2]))
assert lone["ok"], lone
assert batch["ok"], batch
items = batch["result"]
assert len(items) == 100, f"expected 100 batch answers, got {len(items)}"
for i, item in enumerate(items):
    assert item["ok"], (i, item)
    assert item["result"] == lone["result"], f"batch item {i} diverged from the lone answer"
print("serve_smoke: 100/100 batched answers identical to the lone answer")
PY

"$PEVPM" client --port-file "$WORK/port" --stats > "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["ok"], stats
counters = stats["result"]["counters"]
assert counters["serve.model_compiles"] == 1, counters
assert counters["serve.table_compiles"] == 1, counters
assert counters["serve.model_cache_hits"] >= 100, counters
print("serve_smoke: 101 predictions, exactly 1 model parse and 1 table compile")
PY

echo "serve_smoke: scraping the observability sidecar"
python3 - "$HTTP_ADDR" "$WORK/spans.json" <<'PY'
import json, sys, urllib.request
addr, spans_out = sys.argv[1], sys.argv[2]

def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as r:
        return r.read().decode()

# /metrics: 101 predictions (1 lone + 100 batch items), every pipeline
# stage seen exactly once per prediction.
metrics = get("/metrics")
samples = {}
for line in metrics.splitlines():
    if line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    if "{" not in name:
        samples[name] = float(value)
assert samples["serve_requests_total"] == 101, samples.get("serve_requests_total")
for stage in ("validate", "model", "compile", "eval", "render"):
    key = f"serve_stage_{stage}_ms_count"
    assert samples.get(key) == 101, f"{key} = {samples.get(key)!r}, want 101"
assert samples["serve_request_ms_count"] == 101, samples.get("serve_request_ms_count")

health = json.loads(get("/healthz"))
assert health["status"] == "ok", health
assert health["requests_total"] == 101, health

spans = json.loads(get("/spans?last=50"))
assert spans, "span ring is empty"
assert all(s["stages"] for s in spans if s["op"] in ("predict", "batch-item")), spans
open(spans_out, "w").write(json.dumps(spans, indent=1))
print(f"serve_smoke: /metrics golden (101 requests, 5 stages x 101), "
      f"{len(spans)} spans exported")
PY

echo "serve_smoke: adaptive replication on the easy model"
# The ping-pong model averages 50 rounds internally, so the stopping rule
# should converge well before the 32-rep ceiling and report reps saved.
"$PEVPM" client --port-file "$WORK/port" --model "$WORK/model.c" --procs 2 \
    --param rounds=50 --seed 3 --precision 0.05 --min-reps 2 --max-reps 32 \
    > "$WORK/adaptive.json"
"$PEVPM" client --port-file "$WORK/port" --stats > "$WORK/stats-adaptive.json"
python3 - "$WORK/adaptive.json" "$WORK/stats-adaptive.json" <<'PY'
import json, sys
resp = json.load(open(sys.argv[1]))
assert resp["ok"], resp
a = resp["result"]["adaptive"]
assert a["converged"], f"adaptive request did not converge: {a}"
assert a["reps_saved"] > 0, f"adaptive request saved no reps: {a}"
stats = json.load(open(sys.argv[2]))
saved = stats["result"]["counters"].get("serve.reps.saved", 0)
assert saved >= a["reps_saved"], (saved, a)
print(f"serve_smoke: adaptive stopped at {a['reps']}/{a['max_reps']} reps "
      f"(saved {a['reps_saved']}, serve.reps.saved={saved})")
PY

echo "serve_smoke: timing 100 one-shot CLI predictions"
oneshot_start=$(date +%s.%N)
for _ in $(seq 1 100); do
    "$PEVPM" predict --db "$WORK/db.dist" "${FLAGS[@]}" -q > "$WORK/oneshot.txt"
done
oneshot_end=$(date +%s.%N)

python3 - "$WORK/lone.json" "$WORK/oneshot.txt" \
    "$batch_start" "$batch_end" "$oneshot_start" "$oneshot_end" <<'PY'
import json, sys
lone = json.load(open(sys.argv[1]))
oneshot = open(sys.argv[2]).read()
report = lone["result"]["report"]
assert oneshot.startswith(report), (
    f"daemon report is not a prefix of the one-shot output:\n{report!r}\nvs\n{oneshot!r}")
batch = float(sys.argv[4]) - float(sys.argv[3])
loop = float(sys.argv[6]) - float(sys.argv[5])
ratio = loop / batch if batch > 0 else float("inf")
print(f"serve_smoke: daemon batch {batch:.3f}s vs one-shot loop {loop:.3f}s ({ratio:.1f}x)")
assert ratio >= 5.0, f"daemon must beat 100 one-shot invocations by >= 5x, got {ratio:.1f}x"
PY

"$PEVPM" client --port-file "$WORK/port" --shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=

python3 - "$WORK/metrics.json" <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
counters = metrics["counters"]
for key in ("serve.requests", "serve.model_compiles", "serve.table_compiles",
            "serve.model_cache_hits"):
    assert key in counters, f"{key} missing from --metrics-out dump"
assert counters["serve.model_compiles"] == 1, counters
assert counters["serve.table_compiles"] == 1, counters
print("serve_smoke: --metrics-out golden counters present")
PY

python3 - "$WORK/requests.log" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
# 1 lone predict + 100 batch items + 1 adaptive predict + 1 batch frame
# + stats/ping-style control frames; every line must be standalone JSON
# with a stage list.
predicts = [l for l in lines if l["op"] in ("predict", "batch-item")]
assert len(predicts) == 102, f"expected 102 prediction log lines, got {len(predicts)}"
assert all(l["outcome"] == "ok" for l in predicts), predicts[-1]
print(f"serve_smoke: request log has {len(lines)} lines, {len(predicts)} predictions, all ok")
PY

cp "$WORK/metrics.json" serve-metrics.json
cp "$WORK/spans.json" serve-spans.json
echo "serve_smoke: ok"
