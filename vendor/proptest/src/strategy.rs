//! Value-generation strategies: ranges, tuples, and a char-class string
//! pattern.

use crate::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32: u32, i64: u64, isize: usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `&str` patterns act as string strategies. Supported syntax is the
/// char-class form `[chars]{lo,hi}` (with `\x` escapes and `a-z` ranges);
/// anything else is generated verbatim.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[class]{lo,hi}` into (expanded alphabet, lo, hi).
fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = {
        let mut idx = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == ']' {
                idx = Some(i);
                break;
            }
        }
        idx?
    };
    let class = &rest[..close];
    let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = quant.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;

    let mut chars = Vec::new();
    let raw: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < raw.len() {
        let c = raw[i];
        if c == '\\' && i + 1 < raw.len() {
            chars.push(raw[i + 1]);
            i += 2;
        } else if i + 2 < raw.len() && raw[i + 1] == '-' && raw[i + 2] != ']' {
            let (a, b) = (c as u32, raw[i + 2] as u32);
            for code in a..=b {
                if let Some(ch) = char::from_u32(code) {
                    chars.push(ch);
                }
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let a = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&b));
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn char_class_patterns_generate_members() {
        let mut rng = TestRng::from_name("chars");
        let pat = "[0-9a-z+\\-*/%()=<>&|! .,]{0,40}";
        let (chars, lo, hi) = parse_char_class(pat).unwrap();
        assert!(chars.contains(&'-') && chars.contains(&'z') && chars.contains(&'0'));
        assert_eq!((lo, hi), (0, 40));
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| chars.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_name("tuples");
        let (a, b, c) = (0usize..4, 1u64..10, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 4 && (1..10).contains(&b) && (0.0..1.0).contains(&c));
    }
}
