//! Offline vendored mini property-testing engine exposing the subset of the
//! `proptest` macro/strategy surface this workspace's tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - range strategies over integers and floats, tuple strategies,
//!   [`collection::vec`] with exact or ranged lengths, and a char-class
//!   `"[...]{lo,hi}"` string strategy,
//! - [`ProptestConfig::with_cases`].
//!
//! Generation is deterministic: each test function derives its RNG seed
//! from its own name, so failures reproduce without a regression file.

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; this engine's strategies are
        // cheap but some properties drive whole simulations, so default a
        // little lower while staying statistically meaningful.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's name so every property is independent but
    /// reproducible run-to-run.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Assert a property-level condition (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert property-level equality (panics with both values on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
