//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Permitted lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose length falls in `size` (a `usize` for an exact
/// length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = vec(0u64..5_000, 4).generate(&mut rng);
            assert_eq!(v.len(), 4);
            let w = vec(0.0f64..1.0, 1..30).generate(&mut rng);
            assert!((1..30).contains(&w.len()));
        }
    }
}
