//! Offline vendored subset of the `bytes` crate: an immutable,
//! cheaply-clonable byte buffer backed by `Arc<[u8]>`. Covers the surface
//! the MPI simulator uses for message payloads (construction from vectors
//! and static slices, deref to `[u8]`, cheap clones across threads).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"ab"), Bytes::from(vec![b'a', b'b']));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }
}
