//! Named generators. `SmallRng` matches `rand 0.8` on 64-bit platforms:
//! Xoshiro256++ with the SplitMix64 `seed_from_u64` expansion.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (Xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        if seed.iter().all(|&b| b == 0) {
            // Xoshiro must not start from the all-zero state; follow
            // rand_xoshiro and reseed from u64 zero.
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        SmallRng { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as rand_xoshiro does for its generators.
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        SmallRng { s }
    }
}
