//! The `Standard` distribution for primitive draws, mirroring `rand 0.8`'s
//! bit-to-float conversions (53-bit mantissa for `f64`, 24-bit for `f32`).

use crate::RngCore;

/// Types that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a primitive type: uniform over the full
/// integer domain, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
