//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in air-gapped environments with an empty cargo
//! registry, so the handful of external crates it needs are vendored as
//! minimal, dependency-free re-implementations under `vendor/`. This crate
//! covers exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits (with the `&mut R`
//!   forwarding impl that lets `R: Rng + ?Sized` call sites compile),
//! - [`rngs::SmallRng`], implemented as Xoshiro256++ seeded via SplitMix64 —
//!   bit-for-bit identical to `rand 0.8`'s 64-bit `SmallRng` for
//!   `seed_from_u64` + `next_u64` + `gen::<f64>()`, so distributions sampled
//!   here match ones sampled with the upstream crate,
//! - `Standard`/`Distribution` for the primitive draws the engine performs,
//! - `gen_range` over float and integer ranges (float path uses the plain
//!   `low + u01 * (high - low)` mapping; only clock-skew injection uses it).

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Core random-number generation: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

// Matches rand 0.8's `UniformFloat<f64>` single-sample path bit-for-bit:
// 52 random mantissa bits give `value0_1` in [0, 1), and the result is
// `value0_1 * scale + low` (FMA-friendly order, same rounding).
fn f64_single<G: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut G) -> f64 {
    let scale = hi - lo;
    let value0_1 = (rng.next_u64() >> 12) as f64 * (1.0 / (1u64 << 52) as f64);
    let res = value0_1 * scale + lo;
    if res > hi {
        hi
    } else {
        res
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        f64_single(self.start, self.end, rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        f64_single(lo, hi, rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Widening multiply keeps bias below 2^-64 — fine for
                // simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it over the seed bytes (PCG32
    /// stream, matching `rand_core` 0.6's default).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn small_rng_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&x));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ seeded with s = [1, 2, 3, 4] produces
        // 41943041 as its first output: rotl(1+4, 23) + 1 = 5 << 23 + 1.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }
}
