//! Offline vendored subset of the `parking_lot` API: `Mutex`/`RwLock`
//! without poisoning, wrapping `std::sync`. A panicked holder simply
//! releases the lock (`into_inner` on the poison error), matching
//! parking_lot's no-poisoning semantics closely enough for this workspace.

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_shared_reads() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
