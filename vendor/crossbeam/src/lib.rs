//! Offline vendored subset of the `crossbeam` API.
//!
//! The workspace builds in air-gapped environments, so this crate provides
//! the two crossbeam facilities the code uses, implemented over `std`:
//!
//! - [`channel::unbounded`] MPMC-style channels (`Sender` is `Clone`; the
//!   receiver side wraps `std::sync::mpsc` behind a mutex so `Receiver` can
//!   also be cloned and shared),
//! - [`thread::scope`] scoped threads (over `std::thread::scope`, available
//!   since Rust 1.63).

pub mod channel {
    //! Unbounded channels with the crossbeam-channel surface the
    //! simulator's rank/scheduler plumbing relies on.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the channel is disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `None` when no message is ready.
        pub fn try_recv(&self) -> Option<T> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().ok()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam-utils surface.

    /// Run `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(5u32).unwrap();
        tx.send(6).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Ok(6));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_crosses_threads() {
        let (tx, rx) = super::channel::unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100u64 {
                assert_eq!(rx.recv(), Ok(i));
            }
        });
    }
}
