//! Offline vendored mini benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a simple calibrated loop: each benchmark is warmed up, the
//! iteration count is scaled to a target measurement window, and the
//! median of several samples is reported.

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times and record the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    target: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
            samples: 7,
        }
    }
}

impl Criterion {
    /// Measure one benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration: find an iteration count filling the target window.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.target / 10 || iters >= 1 << 30 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            let grown = if b.elapsed.is_zero() {
                iters * 100
            } else {
                ((self.target.as_secs_f64() / 10.0 / b.elapsed.as_secs_f64()).ceil() as u64)
                    .saturating_mul(iters)
                    .max(iters + 1)
            };
            iters = grown.min(1 << 30);
        };
        let per_sample =
            ((self.target.as_secs_f64() / self.samples as f64 / per_iter).ceil() as u64).max(1);

        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters: per_sample,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() / per_sample as f64
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let (lo, hi) = (times[0], times[times.len() - 1]);
        println!(
            "{name:<50} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Group benchmark functions under one registry entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
