//! `grove-pevpm` — reproduction of Grove & Coddington, *Communication
//! Benchmarking and Performance Modelling of MPI Programs on Cluster
//! Computers*.
//!
//! This umbrella crate re-exports the workspace's components:
//!
//! - [`netsim`] — packet-level discrete-event simulator of a commodity
//!   Ethernet cluster (the Perseus substitute);
//! - [`mpisim`] — an MPI-like message-passing library running real Rust
//!   rank programs over the simulated cluster;
//! - [`dist`] — the probability-distribution toolkit (histograms, fits,
//!   `DistTable` benchmark databases);
//! - [`mpibench`] — the MPIBench reproduction (globally-clocked
//!   per-operation benchmarking producing distributions);
//! - [`pevpm`] — the Performance Evaluating Virtual Parallel Machine (the
//!   paper's contribution): directive models, annotation parsing, the
//!   contention scoreboard and the sweep/match Monte-Carlo engine;
//! - [`apps`] — the three evaluation applications (Jacobi, FFT, task
//!   farm), each as a real rank program and as a PEVPM model.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-reproduction results.

pub use pevpm_apps as apps;
pub use pevpm_dist as dist;
pub use pevpm_mpibench as mpibench;
pub use pevpm_mpisim as mpisim;
pub use pevpm_netsim as netsim;

pub use pevpm;
