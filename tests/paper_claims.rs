//! Reduced-scale checks of the paper's qualitative claims — the same
//! logic the full-scale benches print, asserted automatically.

use grove_pevpm::apps::jacobi::JacobiConfig;
use pevpm_bench::{ablate, ext, fig6, figs12, figs34};
use pevpm_mpibench::MachineShape;

/// §6: "simplistic prediction methods utilising 2×1 process ping-pong data
/// will always overestimate performance" — and the gap grows with the
/// process count.
#[test]
fn pingpong_baselines_overestimate_performance_increasingly() {
    let cfg = fig6::Fig6Config {
        shapes: vec![
            MachineShape { nodes: 4, ppn: 1 },
            MachineShape { nodes: 16, ppn: 1 },
        ],
        jacobi: JacobiConfig {
            xsize: 256,
            iterations: 50,
            serial_secs: 3.24e-3,
        },
        bench_reps: 25,
        seed: 31,
    };
    let res = fig6::run(&cfg);
    let mut prev_gap = f64::NEG_INFINITY;
    for row in &res.rows {
        let min_t = row.predicted_time("min-2x1").unwrap();
        assert!(
            min_t < row.measured,
            "{}: min-2x1 must predict a faster program than reality",
            row.shape
        );
        let gap = (row.measured - min_t) / row.measured;
        assert!(
            gap > prev_gap,
            "{}: ping-pong error should grow with scale",
            row.shape
        );
        prev_gap = gap;
    }
}

/// The headline accuracy claim at reduced scale: distribution predictions
/// within 5%.
#[test]
fn distribution_predictions_within_five_percent() {
    let cfg = fig6::Fig6Config {
        shapes: vec![
            MachineShape { nodes: 2, ppn: 1 },
            MachineShape { nodes: 8, ppn: 1 },
            MachineShape { nodes: 8, ppn: 2 },
        ],
        jacobi: JacobiConfig {
            xsize: 256,
            iterations: 50,
            serial_secs: 3.24e-3,
        },
        bench_reps: 30,
        seed: 37,
    };
    let res = fig6::run(&cfg);
    for row in &res.rows {
        let err = row.error("dist-nxp").unwrap().abs();
        assert!(
            err < 0.05,
            "{}: distribution prediction off by {:.1}%",
            row.shape,
            err * 100.0
        );
    }
}

/// Figures 1–3 claims: contention penalty at 1 KB, the 16 KB knee, and the
/// Figure 3 PDF shape.
#[test]
fn benchmark_figures_reproduce_shapes() {
    let res = figs12::run(&figs12::FigsConfig {
        shapes: vec![
            MachineShape { nodes: 2, ppn: 1 },
            MachineShape { nodes: 32, ppn: 1 },
        ],
        sizes: vec![1024, 4096, 8192, 16384, 32768],
        repetitions: 12,
        seed: 41,
    });
    let penalty = figs12::contention_penalty_1k(&res).unwrap();
    assert!(
        penalty > 1.05,
        "1 KB contention penalty too small: {penalty}"
    );
    let (_, knee) = figs12::knee_analysis(&res);
    assert_eq!(knee, Some(16384));

    let series = figs34::run(&figs34::PdfConfig {
        nodes: 16,
        ppn: 2,
        sizes: vec![1024],
        repetitions: 30,
        seed: 43,
        bins: 40,
    });
    assert!(figs34::is_fig3_shape(&series[0]));
}

/// §6 extensions: the other two application classes also predict well.
#[test]
fn fft_and_farm_predictions_are_accurate() {
    let fft_cfg = grove_pevpm::apps::FftConfig {
        n1: 64,
        n2: 64,
        flops_per_sec: 50e6,
        iterations: 6,
    };
    for row in ext::run_fft(&[4], &fft_cfg, 8, 47) {
        assert!(
            row.error().abs() < 0.15,
            "FFT error {:.1}%",
            row.error() * 100.0
        );
    }
    let farm_cfg = grove_pevpm::apps::FarmConfig {
        tasks: 24,
        work_mean_secs: 0.03,
        work_spread_secs: 0.01,
        ..Default::default()
    };
    for row in ext::run_farm(&[5], &farm_cfg, 8, 53) {
        assert!(
            row.error().abs() < 0.15,
            "farm error {:.1}%",
            row.error() * 100.0
        );
    }
}

/// §6 ablation: predictions are robust to moderate histogram coarsening
/// (drift is bounded), and clock skew visibly distorts benchmark data.
#[test]
fn ablations_behave_as_documented() {
    let rows = ablate::run_bins(
        MachineShape { nodes: 4, ppn: 1 },
        &JacobiConfig {
            xsize: 256,
            iterations: 30,
            serial_secs: 3.24e-3,
        },
        &[1, 8, 64],
        20,
        59,
    );
    assert!(rows[0].drift.abs() < 1e-12);
    assert!(rows[2].drift.abs() < 0.05);

    let rows = ablate::run_clock(4, 1024, &[0.0, 1e-3], 30, 61);
    assert!(rows[1].ks > rows[0].ks + 0.1);
}
