//! End-to-end integration: MPIBench → benchmark database → (save/load) →
//! PEVPM prediction vs packet-level measurement, across crate boundaries.

use grove_pevpm::dist::{io, DistTable, Op};
use grove_pevpm::mpibench::{run_p2p, P2pConfig};
use grove_pevpm::mpisim::{World, WorldConfig};
use grove_pevpm::pevpm::model::build::*;
use grove_pevpm::pevpm::timing::TimingModel;
use grove_pevpm::pevpm::vm::{evaluate, EvalConfig};
use grove_pevpm::pevpm::Model;

/// Benchmark a 4-node cluster, persist the database, reload it, and use it
/// to predict a ping-pong program that is then actually executed.
#[test]
fn bench_save_load_predict_measure() {
    // 1. Benchmark.
    let bench = P2pConfig::perseus(4, 1, vec![512, 1024, 2048], 40, 17);
    let res = run_p2p(&bench).unwrap();
    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 80);

    // 2. Serialise and reload (the `.dist` text format).
    let text = io::write_table(&table);
    let reloaded = io::read_table(&text).unwrap();
    assert_eq!(table, reloaded);

    // 3. Predict a 100-round ping-pong between ranks 0 and 1.
    let rounds = 100;
    let model: Model = Model::new().with_stmt(looped(
        "rounds",
        vec![runon2(
            "procnum == 0",
            vec![send("1024", "0", "1"), recv("1024", "1", "0")],
            "procnum == 1",
            vec![recv("1024", "0", "1"), send("1024", "1", "0")],
        )],
    ));
    let timing = TimingModel::distributions(reloaded);
    let predicted = evaluate(
        &model,
        &EvalConfig::new(2).with_param("rounds", rounds as f64),
        &timing,
    )
    .unwrap()
    .makespan;

    // 4. Measure.
    let report = World::run(WorldConfig::perseus(4, 1, 17), |rank| {
        if rank.rank() > 1 {
            return;
        }
        for i in 0..rounds {
            if rank.rank() == 0 {
                rank.send_size(1, i, 1024);
                let _ = rank.recv(1, i);
            } else {
                let _ = rank.recv(0, i);
                rank.send_size(0, i, 1024);
            }
        }
    })
    .unwrap();
    let measured = report.virtual_time.as_secs_f64();

    let err = (predicted - measured).abs() / measured;
    assert!(
        err < 0.05,
        "pipeline prediction off by {:.1}% (measured {measured}, predicted {predicted})",
        err * 100.0
    );
}

/// The same benchmark database must make contention *visible*: sampling at
/// a higher contention level yields systematically larger times.
#[test]
fn database_is_contention_indexed() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut table = DistTable::new();
    for &(nodes, _seed) in &[(2usize, 1u64), (16, 2)] {
        let bench = P2pConfig::perseus(nodes, 1, vec![1024], 40, 23);
        let res = run_p2p(&bench).unwrap();
        res.add_to_table(&mut table, Op::Isend, 80);
    }
    let lo = table.mean_at(Op::Isend, 1024.0, 2.0).unwrap();
    let hi = table.mean_at(Op::Isend, 1024.0, 16.0).unwrap();
    assert!(hi > lo, "contention {lo} -> {hi} should grow");

    let mut rng = SmallRng::seed_from_u64(3);
    let mean_hi: f64 = (0..500)
        .map(|_| table.sample_at(Op::Isend, 1024.0, 16.0, &mut rng).unwrap())
        .sum::<f64>()
        / 500.0;
    assert!(
        (mean_hi - hi).abs() / hi < 0.05,
        "sampling mean {mean_hi} vs {hi}"
    );
}

/// Deterministic reproduction across the whole stack: same seeds, same
/// numbers — benchmark, measurement and prediction.
#[test]
fn full_stack_determinism() {
    let run_once = || {
        let bench = P2pConfig::perseus(4, 1, vec![1024], 20, 5);
        let res = run_p2p(&bench).unwrap();
        let mut table = DistTable::new();
        res.add_to_table(&mut table, Op::Send, 50);
        let model = Model::new().with_stmt(runon2(
            "procnum == 0",
            vec![send("1024", "0", "1")],
            "procnum == 1",
            vec![recv("1024", "0", "1")],
        ));
        let p = evaluate(
            &model,
            &EvalConfig::new(2).with_seed(9),
            &TimingModel::distributions(table),
        )
        .unwrap();
        p.makespan
    };
    assert_eq!(run_once(), run_once());
}
