//! Validation of §5's performance-loss attribution: PEVPM's predicted
//! blocked-time breakdown must agree with the *measured* breakdown from
//! execution traces of the real program.

use grove_pevpm::apps::jacobi::{self, JacobiConfig};
use grove_pevpm::mpisim::{breakdown, WorldConfig};
use grove_pevpm::pevpm::timing::TimingModel;
use grove_pevpm::pevpm::vm::{evaluate, EvalConfig};
use pevpm_mpibench::MachineShape;

#[test]
fn predicted_loss_breakdown_matches_measured_traces() {
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 50,
        serial_secs: 3.24e-3,
    };
    let nodes = 8;

    // Measured: trace the real Jacobi run.
    let mut world = WorldConfig::perseus(nodes, 1, 21);
    world.record_trace = true;
    let run = jacobi::run_measured(world, &cfg).unwrap();
    let traces = run.report.traces.expect("tracing enabled");
    let b = breakdown(&traces);
    let measured_compute: f64 = b.iter().map(|r| r.compute).sum();
    let measured_comm: f64 = b.iter().map(|r| r.send + r.blocked).sum();

    // Predicted: evaluate the model against a matched benchmark database.
    let table =
        pevpm_bench::fig6::shape_table(MachineShape { nodes, ppn: 1 }, &[512, 1024, 2048], 30, 21);
    let pred = evaluate(
        &jacobi::model(&cfg),
        &EvalConfig::new(nodes).with_seed(5),
        &TimingModel::distributions(table),
    )
    .unwrap();
    let predicted_compute: f64 = pred.compute_time.iter().sum();
    let predicted_comm: f64 =
        pred.send_time.iter().sum::<f64>() + pred.blocked_time.iter().sum::<f64>();

    // Compute is exact by construction (same calibrated constant).
    let compute_err = (predicted_compute - measured_compute).abs() / measured_compute;
    assert!(
        compute_err < 0.01,
        "compute breakdown off by {:.1}%",
        compute_err * 100.0
    );

    // Communication totals must agree to within the prediction tolerance.
    let comm_err = (predicted_comm - measured_comm).abs() / measured_comm;
    assert!(
        comm_err < 0.25,
        "comm breakdown: measured {measured_comm:.4}s vs predicted {predicted_comm:.4}s \
         ({:.0}% apart)",
        comm_err * 100.0
    );

    // The loss map localises the waiting: the dominant labels must be the
    // halo receives, and their sum must account for ~all blocked time.
    let recv_loss: f64 = pred
        .loss_by_label
        .iter()
        .filter(|(k, _)| k.starts_with("halo-recv"))
        .map(|(_, v)| v)
        .sum();
    let total_blocked: f64 = pred.blocked_time.iter().sum();
    assert!(
        recv_loss > total_blocked * 0.9,
        "halo receives should dominate the loss report: {recv_loss} of {total_blocked}"
    );
}

#[test]
fn traced_jacobi_comm_fraction_grows_with_scale() {
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 20,
        serial_secs: 3.24e-3,
    };
    let frac = |nodes: usize| {
        let mut world = WorldConfig::perseus(nodes, 1, 31);
        world.record_trace = true;
        let run = jacobi::run_measured(world, &cfg).unwrap();
        let b = breakdown(&run.report.traces.unwrap());
        let comm: f64 = b.iter().map(|r| r.send + r.blocked).sum();
        let total: f64 = b.iter().map(|r| r.total()).sum();
        comm / total
    };
    let f2 = frac(2);
    let f16 = frac(16);
    assert!(
        f16 > f2,
        "communication fraction should grow with scale: {f2:.3} -> {f16:.3}"
    );
}
