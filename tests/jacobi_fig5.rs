//! The paper's Figure 5 listing as an executable artefact: parse the
//! annotated C source shipped verbatim in `crates/pevpm/assets`, evaluate
//! it, and check it against both the programmatic model and the measured
//! execution.

use grove_pevpm::apps::jacobi::{self, JacobiConfig};
use grove_pevpm::mpisim::WorldConfig;
use grove_pevpm::pevpm::timing::TimingModel;
use grove_pevpm::pevpm::vm::{evaluate, EvalConfig};
use grove_pevpm::pevpm::{parse_annotations, Stmt, JACOBI_FIG5};

#[test]
fn fig5_parses_to_the_papers_structure() {
    let m = parse_annotations(JACOBI_FIG5).unwrap();
    assert_eq!(m.stmts.len(), 1, "top level is the iteration loop");
    let Stmt::Loop { body, .. } = &m.stmts[0] else {
        panic!("expected Loop")
    };
    assert_eq!(body.len(), 2, "even/odd Runon + Serial");
    let Stmt::Runon { branches } = &body[0] else {
        panic!("expected Runon")
    };
    assert_eq!(branches.len(), 2);
    let Stmt::Serial { machine, .. } = &body[1] else {
        panic!("expected Serial")
    };
    assert_eq!(machine.as_deref(), Some("perseus"));
}

#[test]
fn fig5_model_evaluates_without_deadlock_for_even_proc_counts() {
    let m = parse_annotations(JACOBI_FIG5).unwrap();
    let timing = TimingModel::hockney(100e-6, 12.5e6);
    for n in [2usize, 4, 8, 16] {
        let p = evaluate(
            &m,
            &EvalConfig::new(n)
                .with_param("xsize", 256.0)
                .with_param("iterations", 5.0),
            &timing,
        )
        .unwrap_or_else(|e| panic!("{n} procs: {e}"));
        assert!(p.makespan > 0.0);
        assert_eq!(p.nprocs, n);
    }
}

#[test]
fn fig5_prediction_tracks_measured_jacobi() {
    // Use the real benchmark-driven pipeline at a reduced scale.
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 40,
        serial_secs: 3.24e-3,
    };
    let table = pevpm_bench::fig6::shape_table(
        pevpm_mpibench::MachineShape { nodes: 4, ppn: 1 },
        &[512, 1024, 2048],
        30,
        13,
    );
    let timing = TimingModel::distributions(table);

    let fig5 = parse_annotations(JACOBI_FIG5).unwrap();
    // The Figure 5 serial constant is in the paper's unit (interpreted as
    // ms); bind the parametric inputs and scale via a custom model instead:
    // evaluate the programmatic model for the comparison and the Fig5 one
    // for structural sanity.
    let prog = jacobi::model(&cfg);
    let predicted = evaluate(&prog, &EvalConfig::new(4).with_seed(3), &timing)
        .unwrap()
        .makespan;
    let fig5_pred = evaluate(
        &fig5,
        &EvalConfig::new(4)
            .with_param("xsize", 256.0)
            .with_param("iterations", cfg.iterations as f64),
        &timing,
    )
    .unwrap()
    .makespan;
    // Identical communication structure: comm time must agree between the
    // two models once the (different) serial constants are subtracted.
    let comm_prog = predicted - cfg.iterations as f64 * cfg.serial_secs / 4.0;
    let comm_fig5 = fig5_pred - cfg.iterations as f64 * 3.24 / 4.0;
    let rel = (comm_prog - comm_fig5).abs() / comm_prog.max(1e-9);
    assert!(
        rel < 0.05,
        "fig5 comm {comm_fig5} vs programmatic comm {comm_prog}"
    );

    let measured = jacobi::run_measured(WorldConfig::perseus(4, 1, 13), &cfg)
        .unwrap()
        .time;
    let err = (predicted - measured).abs() / measured;
    assert!(
        err < 0.06,
        "prediction off by {:.1}% (measured {measured}, predicted {predicted})",
        err * 100.0
    );
}
