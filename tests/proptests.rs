//! Property-based tests over the workspace's core invariants.

use grove_pevpm::dist::{io, CommDist, DistKey, DistTable, Ecdf, Histogram, Op, Summary};
use grove_pevpm::netsim::{ClusterConfig, Network, Time};
use grove_pevpm::pevpm::{parse_expr, Env};
use proptest::prelude::*;

proptest! {
    /// Histogram mass conservation and support bounds hold for arbitrary
    /// finite samples.
    #[test]
    fn histogram_invariants(
        samples in proptest::collection::vec(0.0f64..1e3, 1..200),
        bins in 1usize..64,
    ) {
        let width = 1e3 / bins as f64;
        let h = Histogram::from_samples(&samples, width);
        prop_assert_eq!(h.total() as usize, samples.len());
        let mass: f64 = h.pdf_series().map(|(_, m)| m).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        // Quantiles live within the exact sample range and are monotone.
        let min = h.summary().min().unwrap();
        let max = h.summary().max().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(q >= min - 1e-12 && q <= max + 1e-12, "q={q} not in [{min},{max}]");
            prop_assert!(q >= prev - 1e-12);
            prev = q;
        }
    }

    /// Sampling from a histogram never escapes the observed support and
    /// reproduces the mean within statistical tolerance.
    #[test]
    fn histogram_sampling_respects_support(
        samples in proptest::collection::vec(1.0f64..2.0, 10..100),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let h = Histogram::from_samples(&samples, 0.01);
        let mut rng = SmallRng::seed_from_u64(seed);
        let min = h.summary().min().unwrap();
        let max = h.summary().max().unwrap();
        for _ in 0..100 {
            let x = h.sample(&mut rng).unwrap();
            prop_assert!(x >= min - 1e-12 && x <= max + 1e-12);
        }
    }

    /// Welford merging is order-insensitive (within fp tolerance).
    #[test]
    fn summary_merge_is_order_insensitive(
        a in proptest::collection::vec(-1e3f64..1e3, 1..50),
        b in proptest::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut ab = Summary::from_slice(&a);
        ab.merge(&Summary::from_slice(&b));
        let mut ba = Summary::from_slice(&b);
        ba.merge(&Summary::from_slice(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean().unwrap() - ba.mean().unwrap()).abs() < 1e-6);
        prop_assert!((ab.variance().unwrap() - ba.variance().unwrap()).abs() < 1e-3);
    }

    /// The `.dist` text format round-trips arbitrary tables of histograms
    /// and points.
    #[test]
    fn dist_io_roundtrip(
        entries in proptest::collection::vec(
            (0usize..4, 1u64..1_000_000, 1u32..256, proptest::collection::vec(0.0f64..1.0, 1..30)),
            1..10,
        ),
    ) {
        let ops = [Op::Send, Op::Isend, Op::Barrier, Op::Alltoall];
        let mut table = DistTable::new();
        for (op_idx, size, contention, samples) in entries {
            let key = DistKey { op: ops[op_idx], size, contention };
            if samples.len() == 1 {
                table.insert(key, CommDist::Point(samples[0]));
            } else {
                table.insert(key, CommDist::Hist(Histogram::from_samples(&samples, 0.05)));
            }
        }
        let text = io::write_table(&table);
        let back = io::read_table(&text).unwrap();
        prop_assert_eq!(table, back);
    }

    /// ECDF quantile/cdf are inverse-ish. Type-7 quantiles interpolate
    /// between order statistics, so the sharp bound is
    /// `cdf(quantile(q)) >= q - 1/n` (and quantiles stay within range).
    #[test]
    fn ecdf_quantile_cdf_consistency(
        samples in proptest::collection::vec(-1e2f64..1e2, 1..100),
        q in 0.0f64..1.0,
    ) {
        let e = Ecdf::new(&samples);
        let x = e.quantile(q).unwrap();
        let n = samples.len() as f64;
        prop_assert!(e.cdf(x) + 1.0 / n + 1e-9 >= q);
        prop_assert!(x >= e.quantile(0.0).unwrap());
        prop_assert!(x <= e.quantile(1.0).unwrap());
    }

    /// The expression parser never panics on arbitrary input, and
    /// successfully-parsed expressions evaluate deterministically.
    #[test]
    fn expr_parser_total(src in "[0-9a-z+\\-*/%()=<>&|! .,]{0,40}") {
        let env = Env::default();
        if let Ok(e) = parse_expr(&src) {
            let a = e.eval(&env);
            let b = e.eval(&env);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert!(x == y || (x.is_nan() && y.is_nan())),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "non-deterministic eval: {other:?}"),
            }
        }
    }

    /// Every network transfer completes, is delivered no earlier than its
    /// contention-free minimum, and the engine is deterministic per seed.
    #[test]
    fn network_transfers_always_complete(
        transfers in proptest::collection::vec((0usize..8, 0usize..8, 1u64..20_000), 1..20),
        seed in 0u64..100,
    ) {
        let run = |seed: u64| {
            let mut net = Network::new(ClusterConfig::perseus(8), seed);
            let mut floor = Vec::new();
            for &(src, dst, bytes) in &transfers {
                net.start_transfer(Time::ZERO, src, dst, bytes);
                // Contention-free floor: a lone transfer on an idle net.
                let mut solo = Network::new(ClusterConfig::ideal(8), 0);
                solo.start_transfer(Time::ZERO, src, dst, bytes);
                floor.push(solo.run_to_completion()[0].delivered_at);
            }
            let mut done = net.run_to_completion();
            done.sort_by_key(|c| c.id);
            (done, floor)
        };
        let (done, floor) = run(seed);
        prop_assert_eq!(done.len(), transfers.len(), "all transfers must complete");
        for (c, f) in done.iter().zip(&floor) {
            prop_assert!(
                c.delivered_at >= *f,
                "delivery {} beats the contention-free floor {}",
                c.delivered_at,
                f
            );
        }
        let (again, _) = run(seed);
        prop_assert_eq!(done, again, "engine must be deterministic per seed");
    }
}
